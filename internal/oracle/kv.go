package oracle

// KV is the exported sequential reference model for the aleserve store
// plane (internal/server.Session over kyoto or hashmap — both expose
// identical KV semantics, which the cross-structure oracle tests pin).
// The drain/soak tests replay client-side op tapes against it to prove
// the drain contract: every acknowledged operation was applied exactly
// once, every unacknowledged one not at all.
//
// KV is deliberately separate from the unexported linearizability models
// above: those mirror low-level structure handles (Insert reports "newly
// linked", queues have capacity); KV mirrors the server verbs.

// KVOpKind identifies a server verb in a client op tape.
type KVOpKind uint8

const (
	KVGet KVOpKind = iota
	KVSet
	KVDel
	KVIncr
)

func (k KVOpKind) String() string {
	switch k {
	case KVGet:
		return "GET"
	case KVSet:
		return "SET"
	case KVDel:
		return "DEL"
	case KVIncr:
		return "INCR"
	}
	return "?"
}

// KVOp is one taped client operation together with the reply the server
// acknowledged it with. Acked is false for at most the final operation of
// a connection cut off by a drain: the tape still carries it so replay
// can assert it was NOT applied.
type KVOp struct {
	Kind  KVOpKind
	Key   uint64
	Arg   uint64 // SET value / INCR delta
	Acked bool
	// Reply fields, valid when Acked.
	Val uint64 // GET value, INCR result, DEL 0/1
	OK  bool   // GET found
}

// KVModel is the sequential reference store.
type KVModel struct {
	m map[uint64]uint64
}

// NewKVModel returns an empty model.
func NewKVModel() *KVModel { return &KVModel{m: make(map[uint64]uint64)} }

// Apply executes op and returns (val, ok) with the same meaning as the
// taped reply fields: GET → (value, found); SET → (arg, true);
// DEL → (1/0 existed, existed); INCR → (new value, true).
func (kv *KVModel) Apply(kind KVOpKind, key, arg uint64) (val uint64, ok bool) {
	switch kind {
	case KVGet:
		v, found := kv.m[key]
		return v, found
	case KVSet:
		kv.m[key] = arg
		return arg, true
	case KVDel:
		_, existed := kv.m[key]
		delete(kv.m, key)
		if existed {
			return 1, true
		}
		return 0, false
	case KVIncr:
		// Mirrors kyoto.Handle.Add / hashmap.Handle.Add: an absent key is
		// created holding the delta.
		v := kv.m[key] + arg
		kv.m[key] = v
		return v, true
	}
	panic("oracle: bad KV op")
}

// Len returns the number of live keys.
func (kv *KVModel) Len() int { return len(kv.m) }

// Get reads a key without mutating the model.
func (kv *KVModel) Get(key uint64) (uint64, bool) {
	v, ok := kv.m[key]
	return v, ok
}

// ReplayKVTape replays one connection's tape in order. Acked ops are
// applied and their taped replies compared against the model; unacked
// ops are skipped (the drain contract says they were never applied — the
// caller proves it by comparing final server state against the model).
// Returns the index and a description of the first divergence, or -1.
func ReplayKVTape(kv *KVModel, tape []KVOp) (int, string) {
	for i, op := range tape {
		if !op.Acked {
			continue
		}
		val, ok := kv.Apply(op.Kind, op.Key, op.Arg)
		if val != op.Val || ok != op.OK {
			return i, op.Kind.String() + " reply diverged from sequential model"
		}
	}
	return -1, ""
}
