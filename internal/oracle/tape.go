// Package oracle is the sequential-oracle stress checker of the
// fault-injection harness: it drives the ALE-integrated data structures
// (hashmap, intset, queue) through seeded, randomized operation tapes
// while internal/faultinject forces aborts, validation failures, and
// stretched critical sections, and cross-checks every observed result
// against a single-threaded sequential model replaying the same
// linearized tape.
//
// The check is sound because every injectable fault is: faults force
// retries and fallbacks, never different results, so any divergence from
// the oracle is a real bug in the structure or the engine.
//
// Two modes:
//
//   - Run: the deterministic single-scheduler mode. One goroutine
//     executes the tape one operation at a time under a Static policy, so
//     the tape *is* the linearization and the whole run — operation tape,
//     fault firings, oracle verdict — is bit-for-bit reproducible from
//     (seed, script). On a mismatch the runner minimizes: deterministic
//     replay makes the minimal failing prefix exactly the mismatch index
//     plus one, and script rules are greedily dropped while the failure
//     reproduces. The Repro it emits prints the seed and fault script to
//     re-run.
//
//   - Soak: the concurrent mode. Workers share one structure under
//     injected faults; map/set workers operate on disjoint key ranges so
//     each checks its own sequential model, and the queue is checked by
//     conservation (every value enqueued is dequeued exactly once) plus
//     per-producer FIFO order within each consumer's take log.
package oracle

import (
	"fmt"

	"repro/internal/xrand"
)

// Structure selects the data structure under test.
type Structure uint8

const (
	StructHashMap Structure = iota
	StructIntSet
	StructQueue
	// StructVendored is the alepatch end-to-end subject: the converted
	// examples/vendored/counter_converted package executes the tape while
	// the original examples/vendored/counter package is the sequential
	// model, so any divergence is a conversion bug.
	StructVendored
	NumStructures
)

var structNames = [NumStructures]string{"hashmap", "intset", "queue", "vendored"}

// String returns the canonical structure name.
func (s Structure) String() string {
	if int(s) < len(structNames) {
		return structNames[s]
	}
	return fmt.Sprintf("structure(%d)", uint8(s))
}

// ParseStructure parses a canonical structure name.
func ParseStructure(s string) (Structure, error) {
	for i, n := range structNames {
		if s == n {
			return Structure(i), nil
		}
	}
	return 0, fmt.Errorf("oracle: unknown structure %q (want hashmap, intset, or queue)", s)
}

// OpKind enumerates tape operations across all three structures.
type OpKind uint8

const (
	// hashmap operations.
	OpGet OpKind = iota
	OpInsert
	OpRemove
	OpInsertOpt
	OpRemoveOpt
	OpRemoveSA
	// intset operations (OpInsert/OpRemove are shared).
	OpContains
	// queue operations.
	OpPut
	OpTake
	OpPeek
	// shared read-only size operation.
	OpLen
	// vendored-counter operations (examples/vendored). Key selects the
	// registry name; Val carries the added delta or gauge value.
	OpCAdd
	OpCTotal
	OpCCount
	OpCSnapshot
	OpCMean
	OpCReset
	OpGSet
	OpGGet
	OpRAdd
	OpRTotalOf
	OpRNames

	numOpKinds
)

var opNames = [numOpKinds]string{
	"get", "insert", "remove", "insert-opt", "remove-opt", "remove-sa",
	"contains", "put", "take", "peek", "len",
	"c-add", "c-total", "c-count", "c-snapshot", "c-mean", "c-reset",
	"g-set", "g-get", "r-add", "r-totalof", "r-names",
}

// String returns the operation name.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one tape entry. Key is the operation's key (or the enqueued value
// for OpPut); Val is the inserted value for map inserts.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

func (o Op) String() string {
	switch o.Kind {
	case OpInsert, OpInsertOpt:
		return fmt.Sprintf("%s(%d,%d)", o.Kind, o.Key, o.Val)
	case OpPut:
		return fmt.Sprintf("put(%d)", o.Key)
	case OpCAdd, OpGSet:
		return fmt.Sprintf("%s(%d)", o.Kind, o.Val)
	case OpLen, OpTake, OpPeek, OpCTotal, OpCCount, OpCSnapshot, OpCMean,
		OpCReset, OpGGet, OpRTotalOf, OpRNames:
		return o.Kind.String() + "()"
	default:
		return fmt.Sprintf("%s(%d)", o.Kind, o.Key)
	}
}

// GenTape generates the n-operation tape for (structure, seed) over a
// key space of keys distinct keys. The generator is pure: the same
// arguments always yield the same tape, which is what lets a Repro name a
// failing run by seed alone.
func GenTape(s Structure, seed uint64, n int, keys uint64) []Op {
	return genTape(s, seed, n, 1, keys, true)
}

// genTape is the range-parameterized generator: keys are drawn from
// [base, base+keys), and global (whole-structure) operations are included
// only when global is set — the concurrent soak excludes them because a
// per-worker model cannot predict them.
func genTape(s Structure, seed uint64, n int, base, keys uint64, global bool) []Op {
	if keys == 0 {
		keys = 1
	}
	rng := xrand.New(seed)
	tape := make([]Op, n)
	for i := range tape {
		tape[i] = genOp(s, rng, base, keys, global)
	}
	return tape
}

func genOp(s Structure, rng *xrand.State, base, keys uint64, global bool) Op {
	key := base + rng.Uint64n(keys)
	roll := rng.Uint64n(100)
	switch s {
	case StructHashMap:
		switch {
		case roll < 35:
			return Op{Kind: OpGet, Key: key}
		case roll < 50:
			return Op{Kind: OpInsert, Key: key, Val: rng.Uint64()}
		case roll < 60:
			return Op{Kind: OpInsertOpt, Key: key, Val: rng.Uint64()}
		case roll < 75:
			return Op{Kind: OpRemove, Key: key}
		case roll < 85:
			return Op{Kind: OpRemoveOpt, Key: key}
		case roll < 95 || !global:
			return Op{Kind: OpRemoveSA, Key: key}
		default:
			return Op{Kind: OpLen}
		}
	case StructIntSet:
		switch {
		case roll < 50:
			return Op{Kind: OpContains, Key: key}
		case roll < 70:
			return Op{Kind: OpInsert, Key: key}
		case roll < 90 || !global:
			return Op{Kind: OpRemove, Key: key}
		default:
			return Op{Kind: OpLen}
		}
	case StructQueue:
		switch {
		case roll < 45:
			return Op{Kind: OpPut, Key: rng.Uint64n(1 << 32)}
		case roll < 80:
			return Op{Kind: OpTake}
		case roll < 90 || !global:
			return Op{Kind: OpPeek}
		default:
			return Op{Kind: OpLen}
		}
	case StructVendored:
		// Registry operations target the shared registry, which a
		// per-worker soak model cannot predict; they are global-only.
		switch {
		case roll < 20:
			return Op{Kind: OpCAdd, Val: rng.Uint64n(1000)}
		case roll < 32:
			return Op{Kind: OpCTotal}
		case roll < 40:
			return Op{Kind: OpCCount}
		case roll < 52:
			return Op{Kind: OpCSnapshot}
		case roll < 58:
			return Op{Kind: OpCMean}
		case roll < 60:
			return Op{Kind: OpCReset}
		case roll < 70:
			return Op{Kind: OpGSet, Val: rng.Uint64n(1 << 16)}
		case roll < 80 || !global:
			return Op{Kind: OpGGet}
		case roll < 88:
			return Op{Kind: OpRAdd, Key: key}
		case roll < 96:
			return Op{Kind: OpRTotalOf}
		default:
			return Op{Kind: OpRNames}
		}
	}
	panic("oracle: unknown structure")
}
