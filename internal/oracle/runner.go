package oracle

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hashmap"
	"repro/internal/intset"
	"repro/internal/queue"
	"repro/internal/tm"
)

// Config parameterizes one deterministic stress run. The zero value is
// not runnable; fill at least Structure, Seed, and Ops. Defaults applied
// by Run: Keys 64, QueueCap 16, StaticX/StaticY 3, and a clean
// (SpuriousProb 0) HTM profile — organic randomness is deliberately off
// so every abort is scripted and the run replays bit for bit.
type Config struct {
	Structure Structure
	Seed      uint64
	Ops       int
	Keys      uint64
	Script    faultinject.Script

	// Profile overrides the default deterministic platform profile when
	// its Name is non-empty. Profiles with SpuriousProb > 0 trade exact
	// replayability for organic noise; the harness tests keep it 0.
	Profile tm.Profile

	// QueueCap sizes the queue (rounded up to a power of two by the
	// structure itself; the oracle models the rounded capacity).
	QueueCap int

	// QueueSkipHead seeds the queue's deliberate head-skip defect
	// (queue.SetDebugSkipHeadEvery) — the harness's self-test that a real
	// wrong-result bug is caught and minimized.
	QueueSkipHead uint64

	// StaticX and StaticY are the Static-policy attempt budgets. The
	// adaptive policy is deliberately not used here: its decisions depend
	// on measured durations, which would break bit-for-bit replay.
	StaticX, StaticY int
}

func (c Config) withDefaults() Config {
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.QueueCap == 0 {
		c.QueueCap = 16
	}
	if c.StaticX == 0 {
		c.StaticX = 3
	}
	if c.StaticY == 0 {
		c.StaticY = 3
	}
	if c.Profile.Name == "" {
		c.Profile = tm.Profile{
			Name:    "oracle-deterministic",
			Enabled: true,
			// Generous caps: capacity pressure comes from the script's
			// capacity-cliff rules, where it is reproducible.
			ReadCap:  1 << 16,
			WriteCap: 1 << 16,
		}
	}
	return c
}

// Repro names a failing run precisely enough to reproduce and debug it:
// the structure, seed, minimal failing prefix, and minimized fault
// script. String renders it as the message a failing stress test prints.
type Repro struct {
	Structure     Structure
	Seed          uint64
	Keys          uint64
	Ops           int // minimal failing prefix length (FailIndex+1)
	FailIndex     int
	Script        faultinject.Script
	QueueCap      int
	QueueSkipHead uint64
	Op            Op
	Got, Want     Result
}

// Error formats the mismatch with its reproduction recipe.
func (r *Repro) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %s diverged from sequential oracle at op %d %s: got %s, want %s\n",
		r.Structure, r.FailIndex, r.Op, r.Got, r.Want)
	fmt.Fprintf(&b, "reproduce: alestress -struct %s -seed %d -ops %d -keys %d -script %q",
		r.Structure, r.Seed, r.Ops, r.Keys, r.Script.String())
	if r.Structure == StructQueue {
		fmt.Fprintf(&b, " -queue-cap %d", r.QueueCap)
		if r.QueueSkipHead != 0 {
			fmt.Fprintf(&b, " -seed-bug %d", r.QueueSkipHead)
		}
	}
	return b.String()
}

// Report is the outcome of one deterministic run. TapeHash fingerprints
// the full (operation, result) sequence and Firings the injector's
// per-class counts, so two runs are bit-for-bit identical iff both
// fields match. Repro is nil for a clean run.
type Report struct {
	Ops      int
	TapeHash uint64
	Firings  [faultinject.NumClasses]uint64
	Repro    *Repro
}

// Run executes cfg's tape in the deterministic single-scheduler mode:
// one goroutine, one operation at a time, Static policy, every abort
// scripted. Each result is checked against the sequential model as it is
// observed; on the first mismatch the failure is minimized and reported.
func Run(cfg Config) Report {
	cfg = cfg.withDefaults()
	tape := GenTape(cfg.Structure, cfg.Seed, cfg.Ops, cfg.Keys)
	rep := runTape(cfg, tape)
	if rep.Repro != nil {
		rep.Repro = minimize(cfg, tape, rep.Repro)
	}
	return rep
}

// runTape executes a tape prefix (the whole tape here; minimize passes
// prefixes) and checks every result. It stops at the first mismatch.
func runTape(cfg Config, tape []Op) Report {
	inj := faultinject.New(cfg.Script)
	ex := newExecutor(cfg, inj)
	m := newModel(cfg.Structure, ex.queueCap())
	rep := Report{Ops: len(tape)}
	h := newTapeHash()
	for i, op := range tape {
		got := ex.exec(op)
		want := m.apply(op)
		h = h.op(op, got)
		if got != want {
			rep.Repro = &Repro{
				Structure:     cfg.Structure,
				Seed:          cfg.Seed,
				Keys:          cfg.Keys,
				Ops:           i + 1,
				FailIndex:     i,
				Script:        cfg.Script,
				QueueCap:      cfg.QueueCap,
				QueueSkipHead: cfg.QueueSkipHead,
				Op:            op,
				Got:           got,
				Want:          want,
			}
			break
		}
	}
	rep.TapeHash = uint64(h)
	rep.Firings = inj.Firings()
	return rep
}

// minimize shrinks a failing run: deterministic replay means the minimal
// failing prefix is exactly FailIndex+1 operations, and script rules are
// then dropped greedily while the mismatch still reproduces within that
// prefix. (A defect-seeded failure typically minimizes to an empty
// script — the bug needs no faults at all.)
func minimize(cfg Config, tape []Op, found *Repro) *Repro {
	best := found
	prefix := tape[:found.FailIndex+1]
	script := append(faultinject.Script(nil), cfg.Script...)
	for i := 0; i < len(script); {
		cand := append(append(faultinject.Script(nil), script[:i]...), script[i+1:]...)
		candCfg := cfg
		candCfg.Script = cand
		rep := runTape(candCfg, prefix)
		if rep.Repro == nil {
			i++ // rule i is load-bearing
			continue
		}
		script = cand
		best = rep.Repro
		prefix = prefix[:rep.Repro.FailIndex+1]
	}
	best.Script = script
	best.Ops = len(prefix)
	return best
}

// tapeHash is FNV-1a over the (op, result) stream.
type tapeHash uint64

func newTapeHash() tapeHash { return 14695981039346656037 }

func (h tapeHash) word(x uint64) tapeHash {
	for i := 0; i < 8; i++ {
		h ^= tapeHash(x & 0xff)
		h *= 1099511628211
		x >>= 8
	}
	return h
}

func (h tapeHash) op(op Op, r Result) tapeHash {
	h = h.word(uint64(op.Kind)).word(op.Key).word(op.Val)
	h = h.word(r.Val)
	var flags uint64
	if r.OK {
		flags = 1
	}
	h = h.word(flags)
	for i := 0; i < len(r.Err); i++ {
		h = h.word(uint64(r.Err[i]))
	}
	return h
}

// executor binds one structure instance and dispatches tape operations
// onto its handle, normalizing outcomes into Results.
type executor struct {
	structure Structure
	hm        *hashmap.Handle
	is        *intset.Handle
	q         *queue.Queue
	qh        *queue.Handle
	vend      *vendoredOps
}

// newExecutor builds the structure under test on a fresh runtime with the
// injector installed on both sides (substrate and engine).
func newExecutor(cfg Config, inj *faultinject.Injector) *executor {
	dom := tm.NewDomain(cfg.Profile)
	dom.SetInjector(inj)
	opts := core.DefaultOptions()
	opts.Faults = inj
	rt := core.NewRuntimeOpts(dom, opts)
	ex := &executor{structure: cfg.Structure}
	switch cfg.Structure {
	case StructHashMap:
		// Arena sized past the op count so ErrFull cannot occur: the
		// model does not track arena exhaustion.
		mcfg := hashmap.Config{Buckets: 64, Capacity: cfg.Ops + 256, MarkerStripes: 1}
		m := hashmap.New(rt, "oracle-map", mcfg, core.NewStatic(cfg.StaticX, cfg.StaticY))
		ex.hm = m.NewHandle()
	case StructIntSet:
		s := intset.New(rt, "oracle-set", cfg.Ops+256, core.NewStatic(cfg.StaticX, cfg.StaticY))
		ex.is = s.NewHandle()
	case StructQueue:
		ex.q = queue.New(rt, "oracle-queue", cfg.QueueCap, core.NewStatic(cfg.StaticX, cfg.StaticY))
		if cfg.QueueSkipHead != 0 {
			ex.q.SetDebugSkipHeadEvery(cfg.QueueSkipHead)
		}
		ex.qh = ex.q.NewHandle()
	case StructVendored:
		x, y := cfg.StaticX, cfg.StaticY
		ex.vend = newVendoredConv(rt, func() core.Policy { return core.NewStatic(x, y) })
	default:
		panic("oracle: unknown structure")
	}
	return ex
}

// queueCap reports the effective (rounded) queue capacity for the model.
func (ex *executor) queueCap() int {
	if ex.q != nil {
		return ex.q.Cap()
	}
	return 0
}

func res2(ok bool, err error) Result {
	if err != nil {
		return Result{Err: err.Error()}
	}
	return Result{OK: ok}
}

func (ex *executor) exec(op Op) Result {
	switch ex.structure {
	case StructVendored:
		return ex.vend.apply(op)
	case StructHashMap:
		switch op.Kind {
		case OpGet:
			v, ok, err := ex.hm.Get(op.Key)
			if err != nil {
				return Result{Err: err.Error()}
			}
			return Result{Val: v, OK: ok}
		case OpInsert:
			return res2(ex.hm.Insert(op.Key, op.Val))
		case OpInsertOpt:
			return res2(ex.hm.InsertOpt(op.Key, op.Val))
		case OpRemove:
			return res2(ex.hm.Remove(op.Key))
		case OpRemoveOpt:
			return res2(ex.hm.RemoveOpt(op.Key))
		case OpRemoveSA:
			return res2(ex.hm.RemoveSelfAbort(op.Key))
		case OpLen:
			n, err := ex.hm.Len()
			if err != nil {
				return Result{Err: err.Error()}
			}
			return Result{Val: uint64(n)}
		}
	case StructIntSet:
		switch op.Kind {
		case OpContains:
			return res2(ex.is.Contains(op.Key))
		case OpInsert:
			return res2(ex.is.Insert(op.Key))
		case OpRemove:
			return res2(ex.is.Remove(op.Key))
		case OpLen:
			n, err := ex.is.Len()
			if err != nil {
				return Result{Err: err.Error()}
			}
			return Result{Val: uint64(n)}
		}
	case StructQueue:
		switch op.Kind {
		case OpPut:
			if err := ex.qh.Put(op.Key); err != nil {
				return Result{Err: err.Error()}
			}
			return Result{}
		case OpTake:
			v, err := ex.qh.Take()
			if err != nil {
				return Result{Err: err.Error()}
			}
			return Result{Val: v, OK: true}
		case OpPeek:
			v, ok, err := ex.qh.Peek()
			if err != nil {
				return Result{Err: err.Error()}
			}
			return Result{Val: v, OK: ok}
		case OpLen:
			n, err := ex.qh.Len()
			if err != nil {
				return Result{Err: err.Error()}
			}
			return Result{Val: uint64(n)}
		}
	}
	panic(fmt.Sprintf("oracle: %s cannot execute %s", ex.structure, op))
}
