// Package trace is a lightweight per-thread event recorder for the ALE
// engine. The paper's library differentiates itself by "detailed,
// fine-grained performance data"; aggregate statistics (internal/stats)
// answer *how often*, and this package answers *in what order*: every
// execution attempt, commit, abort (with reason), SWOpt failure, grouping
// deferral and mode fallback can be recorded into a fixed-size ring and
// rendered as a timeline, which is how the adaptive policy's behaviour
// was debugged and is a user-facing diagnostic in its own right.
//
// Rings are single-writer: each ALE thread owns one and records without
// synchronization. Snapshots are meant for post-run analysis (after the
// workers quiesce) or for a single thread inspecting itself; concurrent
// snapshotting of a live foreign ring sees a consistent prefix of slots
// but possibly a torn in-flight event, which is acceptable for the
// diagnostic use case and documented here.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindAttempt: one execution attempt started in the recorded mode.
	KindAttempt Kind = iota
	// KindCommit: the attempt succeeded (mode in Mode).
	KindCommit
	// KindAbort: an HTM attempt aborted; Detail is the tm.AbortReason.
	KindAbort
	// KindSWOptFail: a SWOpt attempt returned retry; Detail is 1 for
	// self-abort, 0 for plain interference.
	KindSWOptFail
	// KindGroupWait: the execution deferred to a retrying SWOpt group.
	KindGroupWait
	// KindFallback: the execution moved to the next mode in the
	// progression (Mode is the mode being abandoned).
	KindFallback

	numKinds
)

var kindNames = [...]string{
	KindAttempt:   "attempt",
	KindCommit:    "commit",
	KindAbort:     "abort",
	KindSWOptFail: "swopt-fail",
	KindGroupWait: "group-wait",
	KindFallback:  "fallback",
}

// String returns a short name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// processStart anchors the package's monotonic clock: every recorded
// timestamp is nanoseconds since this instant, so timestamps from
// different threads' rings share one epoch and survive wall-clock jumps
// (time.Since reads Go's monotonic reading).
var processStart = time.Now()

// Now returns the package's monotonic timestamp: nanoseconds since
// process start. This is the clock Record and RecordSpan stamp events
// with, exported so callers (the core engine's timing layer) can sample
// span boundaries on the same epoch.
func Now() int64 { return int64(time.Since(processStart)) }

// Event is one recorded engine event. Lock identifies the ALE lock (its
// creation sequence number), Mode is the core.Mode as a raw uint8, Detail
// carries kind-specific payload (abort reason, self-abort flag).
// When/End are nanoseconds on the package's monotonic clock (Now): an
// instant event has End == 0; a span (RecordSpan) has End >= When.
type Event struct {
	When   int64 // span begin (or the instant), monotonic ns (Now)
	End    int64 // span end; 0 for instant events
	Seq    uint64
	Thread int32
	Lock   uint32
	Kind   Kind
	Mode   uint8
	Detail uint8
}

// IsSpan reports whether the event carries a duration.
func (e Event) IsSpan() bool { return e.End != 0 }

// Ring is a fixed-capacity single-writer event buffer. The zero Ring is
// disabled (records are dropped); construct with NewRing to enable.
type Ring struct {
	buf    []Event
	next   uint64
	thread int32

	// dropped counts events overwritten by the ring wrapping — loss that
	// was previously silent. It is the one field with foreign readers
	// (flight dumps and the Chrome export read it from live rings), hence
	// atomic: the owner writes, anyone loads.
	dropped atomic.Uint64
}

// NewRing allocates a ring holding the last capacity events for thread id.
func NewRing(capacity int, thread int32) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity), thread: thread}
}

// Enabled reports whether the ring records anything.
func (r *Ring) Enabled() bool { return r != nil && len(r.buf) > 0 }

// Record appends an instant event, overwriting the oldest once full. Only
// the owning thread may call Record.
func (r *Ring) Record(lock uint32, kind Kind, mode, detail uint8) {
	if !r.Enabled() {
		return
	}
	r.push(Event{
		When:   Now(),
		Thread: r.thread,
		Lock:   lock,
		Kind:   kind,
		Mode:   mode,
		Detail: detail,
	})
}

// RecordSpan appends an event covering [begin, end] (timestamps from Now).
// The engine's timing layer uses this to attach durations to attempts and
// commits; a zero or inverted interval degrades to an instant at begin.
func (r *Ring) RecordSpan(lock uint32, kind Kind, mode, detail uint8, begin, end int64) {
	if !r.Enabled() {
		return
	}
	if end < begin {
		end = 0
	}
	r.push(Event{
		When:   begin,
		End:    end,
		Thread: r.thread,
		Lock:   lock,
		Kind:   kind,
		Mode:   mode,
		Detail: detail,
	})
}

func (r *Ring) push(e Event) {
	e.Seq = r.next
	if r.next >= uint64(len(r.buf)) {
		r.dropped.Add(1)
	}
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
}

// Len reports how many events are currently retained.
func (r *Ring) Len() int {
	if !r.Enabled() {
		return 0
	}
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Recorded reports the total number of events ever recorded (including
// overwritten ones).
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.next
}

// Dropped reports how many events were lost to ring wrap-around
// (Recorded − retained). Safe to call from any goroutine while the owner
// is still recording.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Snapshot returns the retained events oldest-first.
func (r *Ring) Snapshot() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	if n == 0 {
		return out
	}
	start := uint64(0)
	if r.next > uint64(len(r.buf)) {
		start = r.next - uint64(len(r.buf))
	}
	for s := start; s < r.next; s++ {
		out = append(out, r.buf[s%uint64(len(r.buf))])
	}
	return out
}

// Merge combines several snapshots into one timeline ordered by time
// (ties by thread then seq).
func Merge(snapshots ...[]Event) []Event {
	var all []Event
	for _, s := range snapshots {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].When != all[j].When {
			return all[i].When < all[j].When
		}
		if all[i].Thread != all[j].Thread {
			return all[i].Thread < all[j].Thread
		}
		return all[i].Seq < all[j].Seq
	})
	return all
}

// ModeNamer translates a raw mode byte to a display name; the core package
// passes its Mode.String. A nil namer prints the raw number.
type ModeNamer func(mode uint8) string

// DetailNamer translates a kind-specific detail byte (e.g. abort reason).
type DetailNamer func(kind Kind, detail uint8) string

// Write renders a merged timeline, one event per line, timestamps relative
// to the first event.
func Write(w io.Writer, events []Event, modeName ModeNamer, detailName DetailNamer) error {
	if len(events) == 0 {
		_, err := io.WriteString(w, "(no events)\n")
		return err
	}
	t0 := events[0].When
	var b strings.Builder
	for _, e := range events {
		mode := fmt.Sprintf("%d", e.Mode)
		if modeName != nil {
			mode = modeName(e.Mode)
		}
		fmt.Fprintf(&b, "%10.3fµs thr%-3d lock%-3d %-10s %-5s",
			float64(e.When-t0)/1e3, e.Thread, e.Lock, e.Kind, mode)
		if e.IsSpan() {
			fmt.Fprintf(&b, " +%.3fµs", float64(e.End-e.When)/1e3)
		}
		if detailName != nil {
			if d := detailName(e.Kind, e.Detail); d != "" {
				fmt.Fprintf(&b, " %s", d)
			}
		} else if e.Detail != 0 {
			fmt.Fprintf(&b, " detail=%d", e.Detail)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Counts tallies events by kind (diagnostics, tests).
func Counts(events []Event) [numKinds]int {
	var out [numKinds]int
	for _, e := range events {
		if int(e.Kind) < len(out) {
			out[e.Kind]++
		}
	}
	return out
}

// NumKinds is the number of event kinds (for sizing).
const NumKinds = int(numKinds)
