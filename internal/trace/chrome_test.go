package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteChromeGolden pins the exporter's output for a small fixed
// timeline: two threads with overlapping spans and one abort instant.
// The exact bytes matter — Perfetto/chrome://tracing parse this format —
// so the test both compares against the golden text and re-parses the
// output as JSON to check the structural fields tools rely on.
func TestWriteChromeGolden(t *testing.T) {
	events := []Event{
		{When: 1000, End: 5000, Thread: 0, Lock: 2, Kind: KindAttempt, Mode: 1, Seq: 0},
		{When: 2000, End: 7000, Thread: 1, Lock: 2, Kind: KindAttempt, Mode: 1, Seq: 0},
		{When: 4500, Thread: 1, Lock: 2, Kind: KindAbort, Mode: 1, Detail: 1, Seq: 1},
		{When: 5000, End: 6000, Thread: 0, Lock: 2, Kind: KindCommit, Mode: 1, Seq: 1},
	}
	modeName := func(m uint8) string { return [...]string{"lock", "htm", "swopt"}[m] }
	detailName := func(k Kind, d uint8) string {
		if k == KindAbort {
			return "reason-conflict"
		}
		return ""
	}

	var sb strings.Builder
	if err := WriteChrome(&sb, events, modeName, detailName); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	want := `{"traceEvents":[
{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"ale-thread-0"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"ale-thread-1"}},
{"name":"attempt htm","ph":"X","pid":1,"tid":0,"ts":0.000,"dur":4.000,"args":{"lock":2,"mode":"htm"}},
{"name":"attempt htm","ph":"X","pid":1,"tid":1,"ts":1.000,"dur":5.000,"args":{"lock":2,"mode":"htm"}},
{"name":"abort htm","ph":"i","s":"t","pid":1,"tid":1,"ts":3.500,"args":{"lock":2,"mode":"htm","detail":"reason-conflict"}},
{"name":"commit htm","ph":"X","pid":1,"tid":0,"ts":4.000,"dur":1.000,"args":{"lock":2,"mode":"htm"}}
],"displayTimeUnit":"ns"}
`
	if got != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}

	// Structural check: valid JSON with the fields trace viewers need.
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %v", e.Name, e.Dur)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 3 || instants != 1 || meta != 2 {
		t.Errorf("got %d spans, %d instants, %d metadata; want 3, 1, 2", spans, instants, meta)
	}
}

// TestWriteChromeMetaDropped: a nonzero drop count appears as otherData;
// a zero Meta must leave the output byte-identical to WriteChrome (the
// golden test above pins that form).
func TestWriteChromeMetaDropped(t *testing.T) {
	ev := []Event{{When: 1000, Thread: 0, Lock: 1, Kind: KindAbort, Mode: 1}}

	var plain, zero, dropped strings.Builder
	if err := WriteChrome(&plain, ev, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeMeta(&zero, ev, nil, nil, Meta{}); err != nil {
		t.Fatal(err)
	}
	if plain.String() != zero.String() {
		t.Errorf("zero Meta changed output:\n%s\nvs\n%s", plain.String(), zero.String())
	}
	if err := WriteChromeMeta(&dropped, ev, nil, nil, Meta{DroppedEvents: 42}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(dropped.String()), &doc); err != nil {
		t.Fatalf("meta export is not valid JSON: %v", err)
	}
	if doc.OtherData["ale_dropped_events"] != "42" {
		t.Errorf("otherData = %v, want ale_dropped_events=42", doc.OtherData)
	}
	if strings.Contains(plain.String(), "otherData") {
		t.Error("plain export grew otherData")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteChrome(&sb, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("empty export missing traceEvents key")
	}
}

func TestRecordSpan(t *testing.T) {
	r := NewRing(8, 4)
	begin := Now()
	end := begin + 1500
	r.RecordSpan(9, KindCommit, 2, 0, begin, end)
	r.RecordSpan(9, KindAttempt, 2, 0, end, begin) // inverted: degrades to instant
	ev := r.Snapshot()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if !ev[0].IsSpan() || ev[0].When != begin || ev[0].End != end {
		t.Errorf("span event = %+v, want [%d,%d]", ev[0], begin, end)
	}
	if ev[1].IsSpan() {
		t.Errorf("inverted interval should degrade to instant, got %+v", ev[1])
	}
	if ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Errorf("seq not assigned in order: %d, %d", ev[0].Seq, ev[1].Seq)
	}
}

func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if a < 0 || b < a {
		t.Errorf("Now not monotonic: %d then %d", a, b)
	}
}
