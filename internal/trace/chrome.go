// Chrome-trace export: renders a merged timeline in the Chrome Trace
// Event Format (the JSON Perfetto and chrome://tracing load), so an ALE
// run's attempt/commit/abort interleaving can be inspected on a real
// timeline UI instead of the text rendering of Write.
//
// Mapping: each ALE thread becomes a trace thread (tid) under one process
// (pid 1) with a thread_name metadata record; span events (RecordSpan)
// become "X" complete events with ts/dur; instant events become "i"
// instants scoped to their thread. Timestamps are microseconds (the
// format's unit) on the package's monotonic epoch, rebased so the first
// event sits at 0.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Meta carries export-level metadata rendered into the trace JSON's
// otherData block. Zero Meta emits no otherData at all, keeping the
// output byte-identical to the pre-metadata format.
type Meta struct {
	// DroppedEvents is the number of ring-wrap losses across the rings
	// that fed this export (sum of Ring.Dropped) — nonzero means the
	// timeline has a hole older than its first event.
	DroppedEvents uint64
}

// WriteChrome renders events (as produced by Merge) as a Chrome Trace
// Event Format JSON object. modeName/detailName label events like Write;
// nil namers fall back to raw numbers.
func WriteChrome(w io.Writer, events []Event, modeName ModeNamer, detailName DetailNamer) error {
	return WriteChromeMeta(w, events, modeName, detailName, Meta{})
}

// WriteChromeMeta is WriteChrome with export metadata attached.
func WriteChromeMeta(w io.Writer, events []Event, modeName ModeNamer, detailName DetailNamer, meta Meta) error {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
			first = false
		}
		b.WriteString(s)
	}

	// Stable thread_name metadata, one per thread seen, sorted for
	// deterministic output.
	threads := map[int32]bool{}
	for _, e := range events {
		threads[e.Thread] = true
	}
	ids := make([]int32, 0, len(threads))
	for id := range threads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"ale-thread-%d"}}`, id, id))
	}

	var t0 int64
	if len(events) > 0 {
		t0 = events[0].When
		for _, e := range events {
			if e.When < t0 {
				t0 = e.When
			}
		}
	}
	us := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	for _, e := range events {
		mode := fmt.Sprintf("%d", e.Mode)
		if modeName != nil {
			mode = modeName(e.Mode)
		}
		name := fmt.Sprintf("%s %s", e.Kind, mode)
		detail := ""
		if detailName != nil {
			detail = detailName(e.Kind, e.Detail)
		} else if e.Detail != 0 {
			detail = fmt.Sprintf("detail=%d", e.Detail)
		}
		args := fmt.Sprintf(`{"lock":%d,"mode":%s`, e.Lock, quote(mode))
		if detail != "" {
			args += fmt.Sprintf(`,"detail":%s`, quote(detail))
		}
		args += "}"
		if e.IsSpan() {
			emit(fmt.Sprintf(`{"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":%s}`,
				quote(name), e.Thread, us(e.When), float64(e.End-e.When)/1e3, args))
		} else {
			emit(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":%s}`,
				quote(name), e.Thread, us(e.When), args))
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"")
	if meta.DroppedEvents > 0 {
		fmt.Fprintf(&b, ",\"otherData\":{\"ale_dropped_events\":\"%d\"}", meta.DroppedEvents)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// quote JSON-escapes a label string (namers only produce ASCII names, but
// escape defensively).
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
