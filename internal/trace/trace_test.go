package trace

import (
	"strings"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4, 7)
	if !r.Enabled() {
		t.Fatal("ring not enabled")
	}
	if r.Len() != 0 || r.Recorded() != 0 {
		t.Fatal("fresh ring not empty")
	}
	r.Record(1, KindAttempt, 0, 0)
	r.Record(1, KindCommit, 0, 0)
	if r.Len() != 2 || r.Recorded() != 2 {
		t.Fatalf("Len=%d Recorded=%d", r.Len(), r.Recorded())
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Kind != KindAttempt || snap[1].Kind != KindCommit {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Thread != 7 || snap[0].Lock != 1 {
		t.Errorf("event stamping wrong: %+v", snap[0])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(3, 0)
	for i := uint8(0); i < 10; i++ {
		r.Record(uint32(i), KindAttempt, 0, i)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", r.Recorded())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if e.Detail != uint8(7+i) {
			t.Errorf("snapshot[%d].Detail = %d, want %d", i, e.Detail, 7+i)
		}
	}
}

func TestRingDroppedCountsWraps(t *testing.T) {
	r := NewRing(3, 0)
	for i := 0; i < 3; i++ {
		r.Record(0, KindAttempt, 0, 0)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d before wrap, want 0", r.Dropped())
	}
	r.Record(0, KindAttempt, 0, 0)
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d after first wrap, want 1", r.Dropped())
	}
	for i := 0; i < 6; i++ {
		r.Record(0, KindAttempt, 0, 0)
	}
	if got, want := r.Dropped(), uint64(7); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	if r.Recorded()-uint64(r.Len()) != r.Dropped() {
		t.Errorf("Recorded-Len = %d, Dropped = %d; should agree",
			r.Recorded()-uint64(r.Len()), r.Dropped())
	}
}

func TestNilAndZeroRingSafe(t *testing.T) {
	var r *Ring
	if r.Enabled() {
		t.Error("nil ring enabled")
	}
	r.Record(0, KindAttempt, 0, 0) // must not panic
	if r.Recorded() != 0 {
		t.Error("nil ring recorded")
	}
	if r.Dropped() != 0 {
		t.Error("nil ring dropped")
	}
	z := &Ring{}
	z.Record(0, KindAttempt, 0, 0)
	if z.Len() != 0 {
		t.Error("zero ring retained an event")
	}
}

func TestMergeOrdersByTime(t *testing.T) {
	a := NewRing(8, 1)
	b := NewRing(8, 2)
	a.Record(0, KindAttempt, 0, 0)
	b.Record(0, KindAttempt, 0, 0)
	a.Record(0, KindCommit, 0, 0)
	merged := Merge(a.Snapshot(), b.Snapshot())
	if len(merged) != 3 {
		t.Fatalf("merged %d events", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].When < merged[i-1].When {
			t.Fatal("merged timeline out of order")
		}
	}
}

func TestWriteRendersEvents(t *testing.T) {
	r := NewRing(8, 3)
	r.Record(5, KindAttempt, 1, 0)
	r.Record(5, KindAbort, 1, 2)
	var sb strings.Builder
	err := Write(&sb, r.Snapshot(),
		func(m uint8) string { return "M" + string(rune('0'+m)) },
		func(k Kind, d uint8) string {
			if k == KindAbort {
				return "reason" + string(rune('0'+d))
			}
			return ""
		})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"thr3", "lock5", "attempt", "abort", "M1", "reason2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events") {
		t.Errorf("empty render = %q", sb.String())
	}
}

func TestCounts(t *testing.T) {
	r := NewRing(8, 0)
	r.Record(0, KindAttempt, 0, 0)
	r.Record(0, KindAttempt, 0, 0)
	r.Record(0, KindCommit, 0, 0)
	c := Counts(r.Snapshot())
	if c[KindAttempt] != 2 || c[KindCommit] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestKindString(t *testing.T) {
	if KindAttempt.String() != "attempt" || KindGroupWait.String() != "group-wait" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind empty")
	}
}
