package tm

import (
	"sort"
	"unsafe"

	"repro/internal/epoch"
	"repro/internal/xrand"
)

// setSpill is the set size beyond which the read/write sets switch from
// linear-scanned slices to map indexes. Almost every critical section in
// the paper's workloads touches far fewer cells than this, so the common
// case pays no hashing; big transactions (long traversals near the
// capacity limits) degrade gracefully instead of quadratically.
const setSpill = 32

// spillHighWater is the set size above which cleanup releases the spill
// maps (and slice backing arrays) instead of retaining them for reuse. A
// descriptor that once ran a giant transaction — e.g. a capacity probe on
// the Haswell profile (ReadCap 512) — would otherwise pin that memory for
// its whole lifetime. The bound sits comfortably above every platform
// profile's capacity, so ordinary workloads never release. Released maps
// go through the domain's epoch reclaimer (Domain.retireSpill) and
// re-enter a free pool for other descriptors once every attempt in flight
// at release time has quiesced.
const spillHighWater = 1024

// Txn is a transaction descriptor. Each worker goroutine owns one reusable
// Txn per domain (allocate with Domain.NewTxn); a Txn must never be shared
// between goroutines.
//
// User code running inside Txn.Run uses Load and Store for every access to
// transactional cells. An abort unwinds out of the user function via an
// internal panic that Run recovers — exactly like real HTM discarding
// speculative state and resuming at the begin checkpoint.
type Txn struct {
	dom *Domain
	rng *xrand.State

	active bool

	// Per-shard snapshot vector. rvs[s] is the transaction's snapshot of
	// shard s's clock, valid iff bit s of rvMask is set. Snapshots are
	// taken lazily on first touch of each shard (touchShard), so a
	// transaction confined to one shard reads exactly one clock — the
	// sharded generalization of TL2's begin-time rv. Allocated once at
	// NewTxn (len = Domain.NumShards()); begin only clears the mask.
	rvs    []uint64
	rvMask uint64
	// wvs[s] caches shard s's commit timestamp during commit write-back,
	// valid only for shards in the write set that commit (see commit).
	// Kept on the descriptor so multi-shard commits zero nothing.
	wvs []uint64

	// pin marks the attempt window for the domain's epoch reclaimer:
	// entered at begin, exited at cleanup. Spill maps retired by any
	// descriptor re-enter the free pool only after this pin (and every
	// other in-flight attempt) has passed a quiescent point.
	pin *epoch.Pin

	// Read set: insertion-ordered; rseen indexes it once it outgrows
	// linear scanning.
	reads []*Var
	rseen map[*Var]struct{}

	// Write set (redo log): parallel key/value slices; windex maps a Var
	// to its slice position once the set outgrows linear scanning.
	wkeys  []*Var
	wvals  []uint64
	windex map[*Var]int

	// Statistics observable by the ALE engine.
	lastReason AbortReason
	starts     uint64
	commits    uint64
	extensions uint64
	crossShard uint64
	aborts     [NumAbortReasons]uint64
	// attemptStart/abortNS measure work discarded by aborts, active only
	// when the domain has a nanotime hook (Domain.SetNanotime).
	attemptStart int64
	abortNS      uint64
}

// NewTxn creates a transaction descriptor for this domain. seed seeds the
// descriptor's private PRNG (used for spurious-abort injection).
func (d *Domain) NewTxn(seed uint64) *Txn {
	return &Txn{
		dom: d,
		rng: xrand.New(seed),
		rvs: make([]uint64, len(d.shards)),
		wvs: make([]uint64, len(d.shards)),
		pin: d.rec.Register(),
	}
}

// Domain returns the domain this descriptor belongs to.
func (t *Txn) Domain() *Domain { return t.dom }

// Active reports whether a transaction is currently executing on this
// descriptor (i.e. we are between begin and commit/abort inside Run).
func (t *Txn) Active() bool { return t.active }

// LastReason returns the abort reason of the most recent attempt, or
// AbortNone if it committed.
func (t *Txn) LastReason() AbortReason { return t.lastReason }

// TxnStats is a snapshot of a descriptor's cumulative statistics. The
// invariant Starts == Commits + ΣAborts holds whenever no transaction is
// mid-flight on the descriptor (user panics are accounted under
// AbortPanic, so even abandoned attempts balance).
type TxnStats struct {
	Starts  uint64
	Commits uint64
	// Extensions counts successful timestamp extensions: loads that
	// observed a version past the shard snapshot but revalidated the
	// read set and advanced that shard's snapshot instead of aborting
	// (TL2 extension, per shard). Each one is a false AbortConflict that
	// did not happen.
	Extensions uint64
	// CrossShard counts attempts that touched more than one commit-clock
	// shard (and so paid at least one cross-shard snapshot
	// revalidation). Counted once per attempt, at the moment the second
	// distinct shard is touched; attempts that later abort still count —
	// it is an access-pattern statistic, not an outcome statistic.
	CrossShard uint64
	Aborts     [NumAbortReasons]uint64
	// AbortNS is the cumulative nanoseconds spent in attempts that
	// aborted — begin to abort, the substrate's view of discarded work.
	// Zero unless the domain has a nanotime hook (Domain.SetNanotime).
	AbortNS uint64
}

// Stats returns a snapshot of the descriptor's cumulative statistics.
func (t *Txn) Stats() TxnStats {
	return TxnStats{
		Starts:     t.starts,
		Commits:    t.commits,
		Extensions: t.extensions,
		CrossShard: t.crossShard,
		Aborts:     t.aborts,
		AbortNS:    t.abortNS,
	}
}

// Extensions returns the cumulative count of successful timestamp
// extensions (see TxnStats.Extensions). The ALE engine reads this after
// every attempt to mirror the delta into the observability layer.
func (t *Txn) Extensions() uint64 { return t.extensions }

// CrossShard returns the cumulative count of attempts that touched more
// than one shard (see TxnStats.CrossShard); the engine mirrors the delta
// into the observability layer the same way it mirrors Extensions.
func (t *Txn) CrossShard() uint64 { return t.crossShard }

// AbortNS returns the cumulative nanoseconds discarded in aborted
// attempts (see TxnStats.AbortNS); the engine mirrors the delta into
// the observability layer the same way it mirrors Extensions.
func (t *Txn) AbortNS() uint64 { return t.abortNS }

// ReadSetSize and WriteSetSize report the current set sizes (diagnostics).
func (t *Txn) ReadSetSize() int  { return len(t.reads) }
func (t *Txn) WriteSetSize() int { return len(t.wkeys) }

// writeIdx returns the write-set position of v, or -1.
func (t *Txn) writeIdx(v *Var) int {
	if t.windex != nil {
		if i, ok := t.windex[v]; ok {
			return i
		}
		return -1
	}
	for i, w := range t.wkeys {
		if w == v {
			return i
		}
	}
	return -1
}

// readSeen reports whether v is already in the read set.
func (t *Txn) readSeen(v *Var) bool {
	if t.rseen != nil {
		_, ok := t.rseen[v]
		return ok
	}
	for _, r := range t.reads {
		if r == v {
			return true
		}
	}
	return false
}

// Run executes body as one hardware-transaction attempt. It returns true
// if the transaction committed, or false plus the abort reason if it
// aborted. Panics other than the internal abort signal propagate to the
// caller.
//
// Run neither retries nor falls back; retry policy belongs to the caller
// (the ALE engine), as it does on real hardware.
func (t *Txn) Run(body func(*Txn)) (committed bool, reason AbortReason) {
	if t.active {
		panic("tm: Run called on an already-active Txn")
	}
	defer func() {
		if r := recover(); r != nil {
			if f := t.dom.nanotime; f != nil {
				if d := f() - t.attemptStart; d > 0 {
					t.abortNS += uint64(d)
				}
			}
			sig, ok := r.(abortSignal)
			if !ok {
				// A user panic abandons the attempt after begin bumped
				// starts; account it as an abort so the stats invariant
				// starts == commits + Σaborts survives the unwind.
				t.lastReason = AbortPanic
				t.aborts[AbortPanic]++
				t.cleanup()
				panic(r)
			}
			t.lastReason = sig.reason
			t.aborts[sig.reason]++
			t.cleanup()
			committed, reason = false, sig.reason
		}
	}()
	t.begin()
	body(t)
	t.commit()
	t.lastReason = AbortNone
	t.commits++
	t.cleanup()
	return true, AbortNone
}

func (t *Txn) begin() {
	t.starts++
	t.active = true
	t.pin.Enter()
	if f := t.dom.nanotime; f != nil {
		t.attemptStart = f()
	}
	// No clock is read here: per-shard snapshots are taken lazily on
	// first touch (touchShard), so single-shard transactions sample one
	// clock and cross-shard ones only the clocks they need.
	t.rvMask = 0
	if !t.dom.profile.Enabled {
		panic(abortSignal{AbortDisabled})
	}
	if inj := t.dom.inj; inj != nil {
		if r := inj.BeginTxn(); r != AbortNone {
			panic(abortSignal{r})
		}
	}
}

// cleanup resets the descriptor after an attempt. The read/write sets and
// spill maps are retained (cleared, not freed) so back-to-back attempts
// allocate nothing — except after an outsized transaction: sets past
// spillHighWater are released entirely so one capacity probe doesn't pin
// memory for the descriptor's lifetime. Released maps are retired through
// the domain's epoch reclaimer for pooled reuse.
func (t *Txn) cleanup() {
	t.active = false
	// Unpin before retiring: our own attempt window is over, so it must
	// not hold up the grace period of the maps we are about to release.
	t.pin.Exit()
	var retireRseen map[*Var]struct{}
	var retireWidx map[*Var]int
	if len(t.reads) > spillHighWater {
		retireRseen = t.rseen
		t.reads = nil
		t.rseen = nil
	} else {
		t.reads = t.reads[:0]
		if t.rseen != nil {
			clear(t.rseen)
		}
	}
	if len(t.wkeys) > spillHighWater {
		retireWidx = t.windex
		t.wkeys = nil
		t.wvals = nil
		t.windex = nil
	} else {
		t.wkeys = t.wkeys[:0]
		t.wvals = t.wvals[:0]
		if t.windex != nil {
			clear(t.windex)
		}
	}
	if retireRseen != nil || retireWidx != nil {
		t.dom.retireSpill(retireRseen, retireWidx)
	}
}

// Abort explicitly aborts the running transaction with the given reason
// (AbortExplicit for user aborts; the ALE engine also uses AbortLockHeld
// and AbortNesting). It does not return.
func (t *Txn) Abort(reason AbortReason) {
	if !t.active {
		panic("tm: Abort outside a transaction")
	}
	panic(abortSignal{reason})
}

// maybeSpurious injects an implementation-induced abort with the profile's
// per-access probability.
func (t *Txn) maybeSpurious() {
	thresh := t.dom.profile.spurThresh
	if thresh != 0 && t.rng.Uint64() < thresh {
		panic(abortSignal{AbortSpurious})
	}
}

// touchShard returns the transaction's snapshot of shard s's clock,
// establishing it on first touch. This is the cross-shard ordering rule:
//
//   - The first shard a transaction touches costs one clock load —
//     identical to the old global begin-time rv.
//   - Touching a further shard samples that shard's clock and then
//     revalidates every read taken so far against the existing snapshot
//     vector. If revalidation passes, all prior reads are simultaneously
//     valid at the sample instant, so the transaction's serialization
//     point slides to it and the new shard's snapshot joins the vector;
//     if any read has moved, that is a genuine conflict and the attempt
//     aborts.
//
// Soundness (the full argument is DESIGN.md §9): let T be the instant the
// new shard's clock was sampled. Every previously-read cell r that
// revalidates — unlocked, version ≤ rvs[shard(r)] — last committed before
// its shard snapshot was taken, which happened before T, and versions
// only grow; so r has held its observed value over an interval containing
// T. Reads taken after this touch validate against snapshots sampled at
// or before T by the same rule. Hence the whole read set is consistent at
// T: exactly the TL2 extension argument, applied to a vector.
// touchShard stays inlinable (the already-touched case is the per-access
// hot path: a bit test and an array read); the once-per-(attempt, shard)
// snapshot work lives in touchShardSlow.
func (t *Txn) touchShard(s uint64) uint64 {
	if t.rvMask&(1<<s) != 0 {
		return t.rvs[s]
	}
	return t.touchShardSlow(s)
}

func (t *Txn) touchShardSlow(s uint64) uint64 {
	rv := t.dom.shards[s].clock.Load()
	if t.rvMask != 0 {
		if t.rvMask&(t.rvMask-1) == 0 {
			// Second distinct shard: this attempt is now cross-shard.
			t.crossShard++
		}
		if !t.validateReads() {
			panic(abortSignal{AbortConflict})
		}
	}
	t.rvs[s] = rv
	t.rvMask |= 1 << s
	return rv
}

// validateReads checks every read cell is unlocked and still within its
// shard's snapshot — i.e. the entire read set is currently consistent.
// Used by cross-shard first touches and timestamp extensions.
func (t *Txn) validateReads() bool {
	for _, r := range t.reads {
		vl := r.vlock.Load()
		if vl&lockBit != 0 || vl>>1 > t.rvs[t.dom.shardOf(r)] {
			return false
		}
	}
	return true
}

// Load transactionally reads v. The value returned is consistent with the
// transaction's snapshot vector (opacity): if v changed since the
// transaction's serialization point, the transaction extends past the
// change or aborts instead of returning stale or torn data.
func (t *Txn) Load(v *Var) uint64 {
	if !t.active {
		panic("tm: Load outside a transaction")
	}
	if v.dom != t.dom {
		panic("tm: Load of Var from a different domain")
	}
	if i := t.writeIdx(v); i >= 0 {
		return t.wvals[i] // read-own-write from the redo log
	}
	s := t.dom.shardOf(v)
	if inj := t.dom.inj; inj != nil {
		if r := inj.OnAccess(len(t.reads), len(t.wkeys), false, int(s)); r != AbortNone {
			panic(abortSignal{r})
		}
	}
	t.maybeSpurious()
	rv := t.touchShard(s)
	v1 := v.vlock.Load()
	if v1&lockBit != 0 {
		panic(abortSignal{AbortConflict})
	}
	x := v.val.Load()
	if v.vlock.Load() != v1 {
		panic(abortSignal{AbortConflict})
	}
	if v1>>1 > rv {
		// The cell committed after our snapshot of its shard. TL2
		// timestamp extension, per shard: if everything read so far is
		// still valid at the old vector, nothing serialized between our
		// reads and now, so we may slide this shard's snapshot forward
		// instead of aborting. Unrelated commits (the overwhelmingly
		// common case) thus stop manufacturing false conflicts that real
		// HTM would never see.
		if t.dom.profile.DisableExtension || !t.extend(s) {
			panic(abortSignal{AbortConflict})
		}
		// Re-sample under the advanced snapshot: the cell may have
		// committed again between the extension sample and here.
		v1 = v.vlock.Load()
		if v1&lockBit != 0 {
			panic(abortSignal{AbortConflict})
		}
		x = v.val.Load()
		if v.vlock.Load() != v1 || v1>>1 > t.rvs[s] {
			panic(abortSignal{AbortConflict})
		}
	}
	if !t.readSeen(v) {
		if len(t.reads) >= t.dom.profile.ReadCap {
			panic(abortSignal{AbortCapacity})
		}
		t.reads = append(t.reads, v)
		if t.rseen != nil {
			t.rseen[v] = struct{}{}
		} else if len(t.reads) > setSpill {
			if t.rseen = t.dom.getRseen(); t.rseen == nil {
				t.rseen = make(map[*Var]struct{}, 4*setSpill)
			}
			for _, r := range t.reads {
				t.rseen[r] = struct{}{}
			}
		}
	}
	return x
}

// extend attempts a TL2 timestamp extension of shard s: sample the
// shard's clock, revalidate every read cell against the *old* snapshot
// vector, and on success adopt the sample as shard s's new snapshot.
// Returns false (leaving the vector untouched) if any read cell is locked
// or has moved — a real conflict.
//
// Soundness: any writer that publishes a version ≤ the new sample into
// one of our read cells in shard s must have ticked s's clock before we
// sampled it, and writers lock their cells before ticking and hold them
// through publication — so at revalidation time that cell shows either
// the lock bit or a version past the old snapshot, and we refuse to
// extend. Reads in other shards keep their own snapshots and revalidate
// against them, which pins their values over an interval containing the
// sample instant (the touchShard argument). Hence after a successful
// extension every read remains valid at the advanced vector, and opacity
// is preserved exactly as if the transaction had begun at the new
// serialization point.
func (t *Txn) extend(s uint64) bool {
	newRv := t.dom.shards[s].clock.Load()
	if !t.validateReads() {
		return false
	}
	t.rvs[s] = newRv
	t.extensions++
	return true
}

// Store transactionally writes x to v. The write is buffered in the redo
// log and becomes visible only if the transaction commits.
func (t *Txn) Store(v *Var, x uint64) {
	if !t.active {
		panic("tm: Store outside a transaction")
	}
	if v.dom != t.dom {
		panic("tm: Store of Var from a different domain")
	}
	s := t.dom.shardOf(v)
	if inj := t.dom.inj; inj != nil {
		if r := inj.OnAccess(len(t.reads), len(t.wkeys), true, int(s)); r != AbortNone {
			panic(abortSignal{r})
		}
	}
	t.maybeSpurious()
	// Blind stores also establish the shard snapshot: commit validates
	// write cells against rvs[shard] at lock time, so the snapshot must
	// exist, and taking it here (with the usual first-touch revalidation)
	// keeps the serialization-point argument uniform for reads and
	// writes.
	t.touchShard(s)
	if i := t.writeIdx(v); i >= 0 {
		t.wvals[i] = x
		return
	}
	if len(t.wkeys) >= t.dom.profile.WriteCap {
		panic(abortSignal{AbortCapacity})
	}
	t.wkeys = append(t.wkeys, v)
	t.wvals = append(t.wvals, x)
	if t.windex != nil {
		t.windex[v] = len(t.wkeys) - 1
	} else if len(t.wkeys) > setSpill {
		if t.windex = t.dom.getWidx(); t.windex == nil {
			t.windex = make(map[*Var]int, 4*setSpill)
		}
		for i, w := range t.wkeys {
			t.windex[w] = i
		}
	}
}

// Add transactionally increments v by delta and returns the new value.
func (t *Txn) Add(v *Var, delta uint64) uint64 {
	n := t.Load(v) + delta
	t.Store(v, n)
	return n
}

// commit attempts the TL2 commit, sharded: lock the write set in a global
// address order, validate the read set against the snapshot vector, tick
// each touched shard's clock once, publish the redo log with per-shard
// timestamps, release. Any failure aborts via panic.
//
// Cross-shard atomicity does not come from comparing clocks — per-shard
// clocks are mutually incomparable — but from the lock bits: every write
// cell in every shard is locked before any shard's clock is ticked, and
// all stay locked until the entire multi-shard write-back has finished.
// A concurrent reader that observes one of our new values therefore
// observes every other write cell either already published or still
// locked (which aborts or re-spins it) — never the old value. DESIGN.md
// §9 spells out the torn-pair argument.
func (t *Txn) commit() {
	if len(t.wkeys) == 0 {
		// Read-only transactions are already valid: every load was
		// validated against the snapshot vector at the time it executed.
		return
	}
	// Lock write cells in address order so concurrent committers cannot
	// deadlock. Sort key/value pairs in tandem.
	t.sortWriteSet()
	locked := 0
	for _, v := range t.wkeys {
		vl := v.vlock.Load()
		// A write cell whose version moved past our shard snapshot means
		// a conflicting committer beat us (write-write conflicts abort on
		// real HTM). A held lock bit means one is mid-commit right now.
		if vl&lockBit != 0 || vl>>1 > t.rvs[t.dom.shardOf(v)] ||
			!v.vlock.CompareAndSwap(vl, vl|lockBit) {
			t.releaseLocked(locked)
			panic(abortSignal{AbortConflict})
		}
		locked++
	}
	// Validate the read set: every cell we read must still be at a
	// version within its shard's snapshot and not locked by another
	// committer.
	for _, v := range t.reads {
		if t.writeIdx(v) >= 0 {
			continue // we hold its lock
		}
		vl := v.vlock.Load()
		if vl&lockBit != 0 || vl>>1 > t.rvs[t.dom.shardOf(v)] {
			t.releaseLocked(locked)
			panic(abortSignal{AbortConflict})
		}
	}
	// Tick each shard the write set touches exactly once (GV4 per
	// shard), caching the timestamps in wvs. wmask tracks which entries
	// are live this commit, so nothing is zeroed.
	var wmask uint64
	for _, v := range t.wkeys {
		s := t.dom.shardOf(v)
		if bit := uint64(1) << s; wmask&bit == 0 {
			t.wvs[s] = t.dom.shards[s].commitTick()
			wmask |= bit
		}
	}
	for i, v := range t.wkeys {
		v.val.Store(t.wvals[i])
		v.vlock.Store(t.wvs[t.dom.shardOf(v)] << 1)
	}
}

// releaseLocked drops the lock bit on the first n write cells (the ones a
// failed commit managed to lock) without bumping their versions.
func (t *Txn) releaseLocked(n int) {
	for _, v := range t.wkeys[:n] {
		v.vlock.Store(v.vlock.Load() &^ lockBit)
	}
}

// sortWriteSet orders the write-set key/value slices in tandem by cell
// address. Small sets (the common case) use an in-place insertion sort so
// the commit fast path performs no interface boxing; spilled sets fall
// back to sort.Sort, whose one allocation is noise next to the spill maps.
// The windex positions are rebuilt afterwards either way.
func (t *Txn) sortWriteSet() {
	if len(t.wkeys) <= setSpill {
		keys, vals := t.wkeys, t.wvals
		for i := 1; i < len(keys); i++ {
			k, x := keys[i], vals[i]
			j := i - 1
			for j >= 0 && uintptr(unsafe.Pointer(keys[j])) > uintptr(unsafe.Pointer(k)) {
				keys[j+1], vals[j+1] = keys[j], vals[j]
				j--
			}
			keys[j+1], vals[j+1] = k, x
		}
	} else {
		sort.Sort(wsetSorter{t.wkeys, t.wvals})
	}
	if t.windex != nil {
		for i, w := range t.wkeys {
			t.windex[w] = i
		}
	}
}

// wsetSorter sorts the write-set key/value slices in tandem by address.
type wsetSorter struct {
	keys []*Var
	vals []uint64
}

func (s wsetSorter) Len() int { return len(s.keys) }
func (s wsetSorter) Less(i, j int) bool {
	return uintptr(unsafe.Pointer(s.keys[i])) < uintptr(unsafe.Pointer(s.keys[j]))
}
func (s wsetSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
