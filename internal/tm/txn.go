package tm

import (
	"sort"
	"unsafe"

	"repro/internal/xrand"
)

// setSpill is the set size beyond which the read/write sets switch from
// linear-scanned slices to map indexes. Almost every critical section in
// the paper's workloads touches far fewer cells than this, so the common
// case pays no hashing; big transactions (long traversals near the
// capacity limits) degrade gracefully instead of quadratically.
const setSpill = 32

// spillHighWater is the set size above which cleanup releases the spill
// maps (and slice backing arrays) instead of retaining them for reuse. A
// descriptor that once ran a giant transaction — e.g. a capacity probe on
// the Haswell profile (ReadCap 512) — would otherwise pin that memory for
// its whole lifetime. The bound sits comfortably above every platform
// profile's capacity, so ordinary workloads never release.
const spillHighWater = 1024

// Txn is a transaction descriptor. Each worker goroutine owns one reusable
// Txn per domain (allocate with Domain.NewTxn); a Txn must never be shared
// between goroutines.
//
// User code running inside Txn.Run uses Load and Store for every access to
// transactional cells. An abort unwinds out of the user function via an
// internal panic that Run recovers — exactly like real HTM discarding
// speculative state and resuming at the begin checkpoint.
type Txn struct {
	dom *Domain
	rng *xrand.State

	active bool
	rv     uint64 // begin-time snapshot of the domain clock

	// Read set: insertion-ordered; rseen indexes it once it outgrows
	// linear scanning.
	reads []*Var
	rseen map[*Var]struct{}

	// Write set (redo log): parallel key/value slices; windex maps a Var
	// to its slice position once the set outgrows linear scanning.
	wkeys  []*Var
	wvals  []uint64
	windex map[*Var]int

	// Statistics observable by the ALE engine.
	lastReason AbortReason
	starts     uint64
	commits    uint64
	extensions uint64
	aborts     [NumAbortReasons]uint64
	// attemptStart/abortNS measure work discarded by aborts, active only
	// when the domain has a nanotime hook (Domain.SetNanotime).
	attemptStart int64
	abortNS      uint64
}

// NewTxn creates a transaction descriptor for this domain. seed seeds the
// descriptor's private PRNG (used for spurious-abort injection).
func (d *Domain) NewTxn(seed uint64) *Txn {
	return &Txn{dom: d, rng: xrand.New(seed)}
}

// Domain returns the domain this descriptor belongs to.
func (t *Txn) Domain() *Domain { return t.dom }

// Active reports whether a transaction is currently executing on this
// descriptor (i.e. we are between begin and commit/abort inside Run).
func (t *Txn) Active() bool { return t.active }

// LastReason returns the abort reason of the most recent attempt, or
// AbortNone if it committed.
func (t *Txn) LastReason() AbortReason { return t.lastReason }

// TxnStats is a snapshot of a descriptor's cumulative statistics. The
// invariant Starts == Commits + ΣAborts holds whenever no transaction is
// mid-flight on the descriptor (user panics are accounted under
// AbortPanic, so even abandoned attempts balance).
type TxnStats struct {
	Starts  uint64
	Commits uint64
	// Extensions counts successful timestamp extensions: loads that
	// observed a version past the begin-time snapshot but revalidated the
	// read set and advanced rv instead of aborting (TL2 extension). Each
	// one is a false AbortConflict that did not happen.
	Extensions uint64
	Aborts     [NumAbortReasons]uint64
	// AbortNS is the cumulative nanoseconds spent in attempts that
	// aborted — begin to abort, the substrate's view of discarded work.
	// Zero unless the domain has a nanotime hook (Domain.SetNanotime).
	AbortNS uint64
}

// Stats returns a snapshot of the descriptor's cumulative statistics.
func (t *Txn) Stats() TxnStats {
	return TxnStats{
		Starts:     t.starts,
		Commits:    t.commits,
		Extensions: t.extensions,
		Aborts:     t.aborts,
		AbortNS:    t.abortNS,
	}
}

// Extensions returns the cumulative count of successful timestamp
// extensions (see TxnStats.Extensions). The ALE engine reads this after
// every attempt to mirror the delta into the observability layer.
func (t *Txn) Extensions() uint64 { return t.extensions }

// AbortNS returns the cumulative nanoseconds discarded in aborted
// attempts (see TxnStats.AbortNS); the engine mirrors the delta into
// the observability layer the same way it mirrors Extensions.
func (t *Txn) AbortNS() uint64 { return t.abortNS }

// ReadSetSize and WriteSetSize report the current set sizes (diagnostics).
func (t *Txn) ReadSetSize() int  { return len(t.reads) }
func (t *Txn) WriteSetSize() int { return len(t.wkeys) }

// writeIdx returns the write-set position of v, or -1.
func (t *Txn) writeIdx(v *Var) int {
	if t.windex != nil {
		if i, ok := t.windex[v]; ok {
			return i
		}
		return -1
	}
	for i, w := range t.wkeys {
		if w == v {
			return i
		}
	}
	return -1
}

// readSeen reports whether v is already in the read set.
func (t *Txn) readSeen(v *Var) bool {
	if t.rseen != nil {
		_, ok := t.rseen[v]
		return ok
	}
	for _, r := range t.reads {
		if r == v {
			return true
		}
	}
	return false
}

// Run executes body as one hardware-transaction attempt. It returns true
// if the transaction committed, or false plus the abort reason if it
// aborted. Panics other than the internal abort signal propagate to the
// caller.
//
// Run neither retries nor falls back; retry policy belongs to the caller
// (the ALE engine), as it does on real hardware.
func (t *Txn) Run(body func(*Txn)) (committed bool, reason AbortReason) {
	if t.active {
		panic("tm: Run called on an already-active Txn")
	}
	defer func() {
		if r := recover(); r != nil {
			if f := t.dom.nanotime; f != nil {
				if d := f() - t.attemptStart; d > 0 {
					t.abortNS += uint64(d)
				}
			}
			sig, ok := r.(abortSignal)
			if !ok {
				// A user panic abandons the attempt after begin bumped
				// starts; account it as an abort so the stats invariant
				// starts == commits + Σaborts survives the unwind.
				t.lastReason = AbortPanic
				t.aborts[AbortPanic]++
				t.cleanup()
				panic(r)
			}
			t.lastReason = sig.reason
			t.aborts[sig.reason]++
			t.cleanup()
			committed, reason = false, sig.reason
		}
	}()
	t.begin()
	body(t)
	t.commit()
	t.lastReason = AbortNone
	t.commits++
	t.cleanup()
	return true, AbortNone
}

func (t *Txn) begin() {
	t.starts++
	t.active = true
	if f := t.dom.nanotime; f != nil {
		t.attemptStart = f()
	}
	t.rv = t.dom.clock.Load()
	if !t.dom.profile.Enabled {
		panic(abortSignal{AbortDisabled})
	}
	if inj := t.dom.inj; inj != nil {
		if r := inj.BeginTxn(); r != AbortNone {
			panic(abortSignal{r})
		}
	}
}

// cleanup resets the descriptor after an attempt. The read/write sets and
// spill maps are retained (cleared, not freed) so back-to-back attempts
// allocate nothing — except after an outsized transaction: sets past
// spillHighWater are released entirely so one capacity probe doesn't pin
// memory for the descriptor's lifetime.
func (t *Txn) cleanup() {
	t.active = false
	if len(t.reads) > spillHighWater {
		t.reads = nil
		t.rseen = nil
	} else {
		t.reads = t.reads[:0]
		if t.rseen != nil {
			clear(t.rseen)
		}
	}
	if len(t.wkeys) > spillHighWater {
		t.wkeys = nil
		t.wvals = nil
		t.windex = nil
	} else {
		t.wkeys = t.wkeys[:0]
		t.wvals = t.wvals[:0]
		if t.windex != nil {
			clear(t.windex)
		}
	}
}

// Abort explicitly aborts the running transaction with the given reason
// (AbortExplicit for user aborts; the ALE engine also uses AbortLockHeld
// and AbortNesting). It does not return.
func (t *Txn) Abort(reason AbortReason) {
	if !t.active {
		panic("tm: Abort outside a transaction")
	}
	panic(abortSignal{reason})
}

// maybeSpurious injects an implementation-induced abort with the profile's
// per-access probability.
func (t *Txn) maybeSpurious() {
	thresh := t.dom.profile.spurThresh
	if thresh != 0 && t.rng.Uint64() < thresh {
		panic(abortSignal{AbortSpurious})
	}
}

// Load transactionally reads v. The value returned is consistent with the
// transaction's begin-time snapshot (opacity): if v changed since begin,
// the transaction aborts instead of returning stale or torn data.
func (t *Txn) Load(v *Var) uint64 {
	if !t.active {
		panic("tm: Load outside a transaction")
	}
	if v.dom != t.dom {
		panic("tm: Load of Var from a different domain")
	}
	if i := t.writeIdx(v); i >= 0 {
		return t.wvals[i] // read-own-write from the redo log
	}
	if inj := t.dom.inj; inj != nil {
		if r := inj.OnAccess(len(t.reads), len(t.wkeys), false); r != AbortNone {
			panic(abortSignal{r})
		}
	}
	t.maybeSpurious()
	v1 := v.vlock.Load()
	if v1&lockBit != 0 {
		panic(abortSignal{AbortConflict})
	}
	x := v.val.Load()
	if v.vlock.Load() != v1 {
		panic(abortSignal{AbortConflict})
	}
	if v1>>1 > t.rv {
		// The cell committed after our begin-time snapshot. TL2 timestamp
		// extension: if everything read so far is still valid at the old
		// snapshot, nothing serialized between our reads and now, so we
		// may slide the snapshot forward instead of aborting. Unrelated
		// commits (the overwhelmingly common case) thus stop
		// manufacturing false conflicts that real HTM would never see.
		if t.dom.profile.DisableExtension || !t.extend() {
			panic(abortSignal{AbortConflict})
		}
		// Re-sample under the advanced snapshot: the cell may have
		// committed again between the extension sample and here.
		v1 = v.vlock.Load()
		if v1&lockBit != 0 {
			panic(abortSignal{AbortConflict})
		}
		x = v.val.Load()
		if v.vlock.Load() != v1 || v1>>1 > t.rv {
			panic(abortSignal{AbortConflict})
		}
	}
	if !t.readSeen(v) {
		if len(t.reads) >= t.dom.profile.ReadCap {
			panic(abortSignal{AbortCapacity})
		}
		t.reads = append(t.reads, v)
		if t.rseen != nil {
			t.rseen[v] = struct{}{}
		} else if len(t.reads) > setSpill {
			t.rseen = make(map[*Var]struct{}, 4*setSpill)
			for _, r := range t.reads {
				t.rseen[r] = struct{}{}
			}
		}
	}
	return x
}

// extend attempts a TL2 timestamp extension: sample the clock, revalidate
// every read cell against the *old* snapshot, and on success adopt the
// sample as the new snapshot. Returns false (leaving rv untouched) if any
// read cell is locked or has moved — a real conflict.
//
// Soundness: any writer that publishes a version ≤ the new sample into one
// of our read cells must have ticked the clock before we sampled it, and
// writers lock their cells before ticking and hold them through
// publication — so at revalidation time that cell shows either the lock
// bit or a version past the old rv, and we refuse to extend. Hence after a
// successful extension every read remains valid at the advanced snapshot,
// and opacity is preserved exactly as if the transaction had begun at the
// new rv.
func (t *Txn) extend() bool {
	newRv := t.dom.clock.Load()
	for _, r := range t.reads {
		vl := r.vlock.Load()
		if vl&lockBit != 0 || vl>>1 > t.rv {
			return false
		}
	}
	t.rv = newRv
	t.extensions++
	return true
}

// Store transactionally writes x to v. The write is buffered in the redo
// log and becomes visible only if the transaction commits.
func (t *Txn) Store(v *Var, x uint64) {
	if !t.active {
		panic("tm: Store outside a transaction")
	}
	if v.dom != t.dom {
		panic("tm: Store of Var from a different domain")
	}
	if inj := t.dom.inj; inj != nil {
		if r := inj.OnAccess(len(t.reads), len(t.wkeys), true); r != AbortNone {
			panic(abortSignal{r})
		}
	}
	t.maybeSpurious()
	if i := t.writeIdx(v); i >= 0 {
		t.wvals[i] = x
		return
	}
	if len(t.wkeys) >= t.dom.profile.WriteCap {
		panic(abortSignal{AbortCapacity})
	}
	t.wkeys = append(t.wkeys, v)
	t.wvals = append(t.wvals, x)
	if t.windex != nil {
		t.windex[v] = len(t.wkeys) - 1
	} else if len(t.wkeys) > setSpill {
		t.windex = make(map[*Var]int, 4*setSpill)
		for i, w := range t.wkeys {
			t.windex[w] = i
		}
	}
}

// Add transactionally increments v by delta and returns the new value.
func (t *Txn) Add(v *Var, delta uint64) uint64 {
	n := t.Load(v) + delta
	t.Store(v, n)
	return n
}

// commit attempts the TL2 commit: lock the write set in a global order,
// validate the read set against the begin-time snapshot, advance the
// clock, publish the redo log, release. Any failure aborts via panic.
func (t *Txn) commit() {
	if len(t.wkeys) == 0 {
		// Read-only transactions are already valid: every load was
		// validated against rv at the time it executed.
		return
	}
	// Lock write cells in address order so concurrent committers cannot
	// deadlock. Sort key/value pairs in tandem.
	t.sortWriteSet()
	locked := 0
	for _, v := range t.wkeys {
		vl := v.vlock.Load()
		// A write cell whose version moved past our snapshot means a
		// conflicting committer beat us (write-write conflicts abort on
		// real HTM). A held lock bit means one is mid-commit right now.
		if vl&lockBit != 0 || vl>>1 > t.rv || !v.vlock.CompareAndSwap(vl, vl|lockBit) {
			t.releaseLocked(locked)
			panic(abortSignal{AbortConflict})
		}
		locked++
	}
	// Validate the read set: every cell we read must still be at a
	// version within our snapshot and not locked by another committer.
	for _, v := range t.reads {
		if t.writeIdx(v) >= 0 {
			continue // we hold its lock
		}
		vl := v.vlock.Load()
		if vl&lockBit != 0 || vl>>1 > t.rv {
			t.releaseLocked(locked)
			panic(abortSignal{AbortConflict})
		}
	}
	wv := t.dom.commitTick()
	for i, v := range t.wkeys {
		v.val.Store(t.wvals[i])
		v.vlock.Store(wv << 1)
	}
}

// releaseLocked drops the lock bit on the first n write cells (the ones a
// failed commit managed to lock) without bumping their versions.
func (t *Txn) releaseLocked(n int) {
	for _, v := range t.wkeys[:n] {
		v.vlock.Store(v.vlock.Load() &^ lockBit)
	}
}

// sortWriteSet orders the write-set key/value slices in tandem by cell
// address. Small sets (the common case) use an in-place insertion sort so
// the commit fast path performs no interface boxing; spilled sets fall
// back to sort.Sort, whose one allocation is noise next to the spill maps.
// The windex positions are rebuilt afterwards either way.
func (t *Txn) sortWriteSet() {
	if len(t.wkeys) <= setSpill {
		keys, vals := t.wkeys, t.wvals
		for i := 1; i < len(keys); i++ {
			k, x := keys[i], vals[i]
			j := i - 1
			for j >= 0 && uintptr(unsafe.Pointer(keys[j])) > uintptr(unsafe.Pointer(k)) {
				keys[j+1], vals[j+1] = keys[j], vals[j]
				j--
			}
			keys[j+1], vals[j+1] = k, x
		}
	} else {
		sort.Sort(wsetSorter{t.wkeys, t.wvals})
	}
	if t.windex != nil {
		for i, w := range t.wkeys {
			t.windex[w] = i
		}
	}
}

// wsetSorter sorts the write-set key/value slices in tandem by address.
type wsetSorter struct {
	keys []*Var
	vals []uint64
}

func (s wsetSorter) Len() int { return len(s.keys) }
func (s wsetSorter) Less(i, j int) bool {
	return uintptr(unsafe.Pointer(s.keys[i])) < uintptr(unsafe.Pointer(s.keys[j]))
}
func (s wsetSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
