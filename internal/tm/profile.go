package tm

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
)

// MaxShards bounds Profile.Shards: shard sets are tracked in uint64
// bitmasks on the transaction hot path (Txn.rvMask), so a domain can have
// at most 64 commit-clock shards.
const MaxShards = 64

// Profile describes the best-effort HTM characteristics of a simulated
// platform. The ALE paper's three evaluation platforms map onto profiles as
// documented in DESIGN.md: what matters to the ALE policies is not absolute
// speed but the failure pressure HTM puts on them — how big a transaction
// can get, and how often it dies for incidental reasons.
type Profile struct {
	// Name identifies the platform in reports and benchmark output.
	Name string

	// Enabled reports whether the platform has HTM at all. When false,
	// every transaction attempt aborts immediately with AbortDisabled
	// (the T2 platform).
	Enabled bool

	// ReadCap and WriteCap bound the number of distinct transactional
	// cells a transaction may read or write before aborting with
	// AbortCapacity. Real HTM is bounded by cache geometry; we bound by
	// distinct Vars, which tracks the same "big critical sections cannot
	// use HTM" pressure.
	ReadCap  int
	WriteCap int

	// SpuriousProb is the per-transactional-access probability of an
	// AbortSpurious failure. Making it per-access (rather than per
	// transaction) reproduces the real-HTM property that longer
	// transactions fail more often for incidental reasons.
	SpuriousProb float64

	// Shards is the number of commit-clock shards the domain splits into:
	// each shard owns an independent GV4 clock on its own cache line, and
	// Vars hash onto shards by address, so transactions confined to one
	// shard never synchronize with the others' clocks. 0 (the default)
	// derives the count from GOMAXPROCS at Finalize time, rounded up to a
	// power of two and clamped to [1, MaxShards]. Explicit values must be
	// powers of two in [1, MaxShards]; Validate rejects anything else.
	// Shards is a scaling knob, not a platform property: 1 reproduces the
	// pre-sharding single-clock behaviour exactly (the `-shards 1`
	// ablation in EXPERIMENTS.md).
	Shards int

	// DisableExtension turns off TL2 timestamp extension (an ablation
	// switch, not a platform property): a Load observing a version above
	// the begin-time snapshot aborts with AbortConflict immediately, the
	// pre-extension behaviour. EXPERIMENTS.md quantifies the
	// false-conflict abort rate this reintroduces.
	DisableExtension bool

	// spurThresh is SpuriousProb precomputed as a uint64 threshold so the
	// hot path compares a raw PRNG draw instead of converting to float.
	spurThresh uint64
}

// Validate reports whether the profile's parameters are meaningful,
// naming the offending field and profile in the error. A negative
// capacity would make every transactional access abort with
// AbortCapacity (len(set) >= cap holds from the first access) and a
// negative or NaN SpuriousProb silently disables or corrupts the
// spurious-abort draw — none of which models a real platform, so domain
// construction rejects them instead of misbehaving. SpuriousProb above 1
// is allowed and clamps to "every access aborts" (Finalize), which is a
// legitimate worst-case profile.
func (p *Profile) Validate() error {
	if p.ReadCap < 0 {
		return fmt.Errorf("tm: profile %q: negative ReadCap %d", p.Name, p.ReadCap)
	}
	if p.WriteCap < 0 {
		return fmt.Errorf("tm: profile %q: negative WriteCap %d", p.Name, p.WriteCap)
	}
	if p.SpuriousProb < 0 {
		return fmt.Errorf("tm: profile %q: negative SpuriousProb %g", p.Name, p.SpuriousProb)
	}
	if math.IsNaN(p.SpuriousProb) {
		return fmt.Errorf("tm: profile %q: SpuriousProb is NaN", p.Name)
	}
	if p.Shards < 0 {
		return fmt.Errorf("tm: profile %q: negative Shards %d", p.Name, p.Shards)
	}
	if p.Shards > MaxShards {
		return fmt.Errorf("tm: profile %q: Shards %d exceeds MaxShards %d",
			p.Name, p.Shards, MaxShards)
	}
	if p.Shards > 0 && p.Shards&(p.Shards-1) != 0 {
		return fmt.Errorf("tm: profile %q: Shards %d is not a power of two",
			p.Name, p.Shards)
	}
	return nil
}

// Finalize precomputes derived fields. Domain constructors call it; callers
// building custom profiles by struct literal and passing them to NewDomain
// do not need to call it themselves.
func (p *Profile) Finalize() {
	if p.Shards == 0 {
		p.Shards = autoShards(runtime.GOMAXPROCS(0))
	}
	switch {
	case p.SpuriousProb <= 0:
		p.spurThresh = 0
	case p.SpuriousProb >= 1:
		p.spurThresh = ^uint64(0)
	default:
		p.spurThresh = uint64(p.SpuriousProb * float64(1<<63) * 2)
	}
}

// autoShards derives the default shard count from a parallelism level:
// the next power of two ≥ procs, clamped to [1, MaxShards]. One shard per
// hardware thread is the point where disjoint committers stop sharing
// clock cache lines; more buys nothing and dilutes the granule stripes.
func autoShards(procs int) int {
	if procs <= 1 {
		return 1
	}
	s := 1 << bits.Len(uint(procs-1))
	if s > MaxShards {
		return MaxShards
	}
	return s
}

// String summarizes the profile for reports.
func (p *Profile) String() string {
	if !p.Enabled {
		return fmt.Sprintf("%s (no HTM)", p.Name)
	}
	return fmt.Sprintf("%s (HTM rcap=%d wcap=%d spur=%.4f)",
		p.Name, p.ReadCap, p.WriteCap, p.SpuriousProb)
}
