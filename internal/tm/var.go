package tm

import (
	"runtime"
	"sync/atomic"
)

// Var is a single 64-bit transactional memory cell. All data that simulated
// hardware transactions may touch must live in Vars: the versioned lock
// word carried by each Var is what lets the simulator detect conflicts
// between transactions and between transactions and direct writers.
//
// A Var belongs to the Domain that created it and must only be used with
// transactions of that Domain (the version clock is per-Domain).
//
// The zero Var is not valid; allocate through Domain.NewVar or
// Domain.NewVars so the cell is stamped with its domain.
type Var struct {
	// vlock packs (version << 1) | lockBit. Versions come from the
	// domain's global clock, so they are comparable with transaction
	// begin-time snapshots (TL2).
	vlock atomic.Uint64
	// val is the current committed value. While vlock's lock bit is set a
	// writer may be mid-update, so readers must revalidate vlock around
	// loads of val.
	val atomic.Uint64
	dom *Domain
}

const lockBit = 1

// Domain groups Vars and transactions that may interact. It owns the global
// version clock and the platform profile. Independent data structures can
// use independent domains; everything in one benchmark normally shares one.
type Domain struct {
	clock   atomic.Uint64
	profile Profile
	// inj, when non-nil, is the fault-injection hook set (see inject.go).
	// Read without synchronization on the transaction hot path; install
	// before the domain is shared.
	inj Injector
	// nanotime, when non-nil, is sampled at attempt begin and abort so
	// TxnStats.AbortNS can account discarded work (see SetNanotime). Like
	// inj it is read without synchronization; install before sharing.
	nanotime func() int64
}

// NewDomain creates a transactional domain with the given platform profile.
// It panics if the profile is invalid (see Profile.Validate): a negative
// capacity or probability would silently abort every transaction instead
// of expressing any real platform.
func NewDomain(p Profile) *Domain {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	p.Finalize()
	return &Domain{profile: p}
}

// Profile returns the domain's platform profile.
func (d *Domain) Profile() *Profile { return &d.profile }

// SetNanotime installs the monotonic clock the domain uses to measure
// aborted-attempt durations (TxnStats.AbortNS). nil — the default —
// disables measurement: attempts then pay no clock reads at all, keeping
// the untimed hot path unchanged. Install before the domain is shared;
// the hook must be safe for concurrent use (a pure clock read is).
func (d *Domain) SetNanotime(f func() int64) { d.nanotime = f }

// HTMAvailable reports whether transactions can ever commit on this domain.
func (d *Domain) HTMAvailable() bool { return d.profile.Enabled }

// Now returns the current value of the domain's version clock. Useful in
// tests and diagnostics only.
func (d *Domain) Now() uint64 { return d.clock.Load() }

// commitTick obtains a commit timestamp for a read-write transaction with
// the GV4 "pass on failure" scheme: try one CAS to advance the clock; if a
// concurrent committer wins the race, adopt the clock's current value as
// our own timestamp instead of retrying. Concurrent disjoint commits may
// thus share a timestamp, which is safe because each committer locks its
// entire write set *before* calling commitTick and holds the locks through
// publication: two committers sharing a timestamp necessarily have
// disjoint write sets, and any reader with rv ≥ wv began after the clock
// reached wv, i.e. after both writers had locked their cells — so it
// either waits out the lock bits or sees the fully published values. The
// payoff is that N disjoint committers perform one clock write instead of
// N, removing the last globally contended CAS from the commit path.
func (d *Domain) commitTick() uint64 {
	old := d.clock.Load()
	if d.clock.CompareAndSwap(old, old+1) {
		return old + 1
	}
	return d.clock.Load()
}

// NewVar allocates a Var in this domain holding init.
func (d *Domain) NewVar(init uint64) *Var {
	v := &Var{dom: d}
	v.val.Store(init)
	return v
}

// NewVars allocates n zero-valued Vars in one backing array, for
// arena-style data structures (e.g. the HashMap node pool).
func (d *Domain) NewVars(n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i].dom = d
	}
	return vs
}

// InitVar prepares a zero Var embedded in a caller-allocated struct for use
// in this domain with initial value x. Must be called before the Var is
// shared with other goroutines.
func (d *Domain) InitVar(v *Var, x uint64) {
	v.dom = d
	v.val.Store(x)
	v.vlock.Store(0)
}

// Domain returns the domain the Var belongs to.
func (v *Var) Domain() *Domain { return v.dom }

// LoadDirect reads the Var outside any transaction. The load is atomic for
// this single cell; consistency across multiple cells is the caller's
// problem (SWOpt paths solve it with conflict-marker validation, Lock-mode
// code solves it by holding the lock).
func (v *Var) LoadDirect() uint64 { return v.val.Load() }

// LoadConsistent reads the Var outside any transaction, waiting out any
// in-flight writer (a committing transaction or a direct store holds the
// cell's version lock while updating it). Non-transactional code that must
// serialize against transaction commits — ALE's Lock-mode and SWOpt-mode
// accesses — uses this: because a committing transaction holds every
// write-set cell's lock until the whole write-back finishes, a
// lock-respecting reader can never observe a half-published commit.
func (v *Var) LoadConsistent() uint64 {
	_, val := v.sampleUnlocked()
	return val
}

// StoreDirect writes the Var outside any transaction, serializing correctly
// against transactions: it locks the cell, advances the domain clock, and
// publishes the new version, so every transaction that began earlier and
// touches this cell will abort. This is exactly the effect a plain store by
// a non-transactional thread has on real HTM (cache-line invalidation kills
// the reader's transaction).
func (v *Var) StoreDirect(x uint64) {
	v.lockCell()
	wv := v.dom.clock.Add(1)
	v.val.Store(x)
	v.vlock.Store(wv << 1)
}

// AddDirect atomically adds delta to the Var outside any transaction and
// returns the new value, with the same conflict semantics as StoreDirect.
func (v *Var) AddDirect(delta uint64) uint64 {
	v.lockCell()
	wv := v.dom.clock.Add(1)
	n := v.val.Load() + delta
	v.val.Store(n)
	v.vlock.Store(wv << 1)
	return n
}

// SwapDirect atomically replaces the Var's value outside any transaction,
// returning the previous value, with the same conflict semantics as
// StoreDirect.
func (v *Var) SwapDirect(x uint64) uint64 {
	v.lockCell()
	wv := v.dom.clock.Add(1)
	old := v.val.Load()
	v.val.Store(x)
	v.vlock.Store(wv << 1)
	return old
}

// CASDirect performs a compare-and-swap outside any transaction, with the
// same conflict semantics as StoreDirect. It returns whether the swap
// happened.
func (v *Var) CASDirect(old, new uint64) bool {
	v.lockCell()
	if v.val.Load() != old {
		// Release without bumping the version: nothing changed.
		v.vlock.Store(v.vlock.Load() &^ lockBit)
		return false
	}
	wv := v.dom.clock.Add(1)
	v.val.Store(new)
	v.vlock.Store(wv << 1)
	return true
}

// lockCell spins until it owns the cell's lock bit.
func (v *Var) lockCell() {
	for spins := 0; ; spins++ {
		vl := v.vlock.Load()
		if vl&lockBit == 0 && v.vlock.CompareAndSwap(vl, vl|lockBit) {
			return
		}
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// sampleUnlocked returns the cell's (version, value) observed consistently,
// spinning past in-flight writers. Used by direct read-modify-write ops and
// tests.
func (v *Var) sampleUnlocked() (ver, val uint64) {
	for spins := 0; ; spins++ {
		v1 := v.vlock.Load()
		if v1&lockBit == 0 {
			x := v.val.Load()
			if v.vlock.Load() == v1 {
				return v1 >> 1, x
			}
			continue
		}
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// Version returns the cell's current committed version (test/diagnostic
// use).
func (v *Var) Version() uint64 {
	ver, _ := v.sampleUnlocked()
	return ver
}
