package tm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/epoch"
)

// Var is a single 64-bit transactional memory cell. All data that simulated
// hardware transactions may touch must live in Vars: the versioned lock
// word carried by each Var is what lets the simulator detect conflicts
// between transactions and between transactions and direct writers.
//
// A Var belongs to the Domain that created it and must only be used with
// transactions of that Domain (version clocks are per-Domain-shard).
//
// The zero Var is not valid; allocate through Domain.NewVar or
// Domain.NewVars so the cell is stamped with its domain.
type Var struct {
	// vlock packs (version << 1) | lockBit. Versions come from the clock
	// of the shard the Var hashes onto, so they are comparable with
	// transaction per-shard snapshots (TL2, sharded).
	vlock atomic.Uint64
	// val is the current committed value. While vlock's lock bit is set a
	// writer may be mid-update, so readers must revalidate vlock around
	// loads of val.
	val atomic.Uint64
	dom *Domain
}

const lockBit = 1

// shard is one commit-clock shard. Each shard's clock lives on its own
// cache line (the pad below) so disjoint committers on different shards
// never ping-pong a shared line — the single-clock serialization the GV4
// scheme could not remove (GV4 removed the CAS retry loop; the cache-line
// transfer itself remained).
type shard struct {
	clock atomic.Uint64
	_     [56]byte
}

// Domain groups Vars and transactions that may interact. It owns the
// sharded version clocks and the platform profile. Independent data
// structures can use independent domains; everything in one benchmark
// normally shares one.
type Domain struct {
	// shards are the commit clocks; len is a power of two in
	// [1, MaxShards] (Profile.Shards after Finalize). shardMask is
	// len(shards)-1, kept flat for the per-access hash.
	shards    []shard
	shardMask uint64
	profile   Profile
	// inj, when non-nil, is the fault-injection hook set (see inject.go).
	// Read without synchronization on the transaction hot path; install
	// before the domain is shared.
	inj Injector
	// nanotime, when non-nil, is sampled at attempt begin and abort so
	// TxnStats.AbortNS can account discarded work (see SetNanotime). Like
	// inj it is read without synchronization; install before sharing.
	nanotime func() int64

	// rec reclaims retired spill maps: a map released by one descriptor
	// re-enters the free pool only after every transaction attempt that
	// was in flight at release time has finished (epoch grace period), so
	// pool reuse can never hand out memory a stalled attempt still
	// references. Txn pins (Txn.pin) mark the attempt windows.
	rec       *epoch.Reclaimer
	spillMu   sync.Mutex
	freeRseen []map[*Var]struct{}
	freeWidx  []map[*Var]int
}

// NewDomain creates a transactional domain with the given platform profile.
// It panics if the profile is invalid (see Profile.Validate): a negative
// capacity or probability would silently abort every transaction instead
// of expressing any real platform.
func NewDomain(p Profile) *Domain {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	p.Finalize()
	return &Domain{
		shards:    make([]shard, p.Shards),
		shardMask: uint64(p.Shards - 1),
		profile:   p,
		rec:       epoch.New(),
	}
}

// Profile returns the domain's platform profile.
func (d *Domain) Profile() *Profile { return &d.profile }

// SetNanotime installs the monotonic clock the domain uses to measure
// aborted-attempt durations (TxnStats.AbortNS). nil — the default —
// disables measurement: attempts then pay no clock reads at all, keeping
// the untimed hot path unchanged. Install before the domain is shared;
// the hook must be safe for concurrent use (a pure clock read is).
func (d *Domain) SetNanotime(f func() int64) { d.nanotime = f }

// HTMAvailable reports whether transactions can ever commit on this domain.
func (d *Domain) HTMAvailable() bool { return d.profile.Enabled }

// NumShards returns the domain's commit-clock shard count (Profile.Shards
// after auto-resolution).
func (d *Domain) NumShards() int { return len(d.shards) }

// ShardClock returns the current value of shard s's version clock.
// Useful in tests and diagnostics only; values from different shards are
// not comparable with each other.
func (d *Domain) ShardClock(s int) uint64 { return d.shards[s].clock.Load() }

// Now returns the current value of shard 0's version clock. It is only
// meaningful on single-shard domains (tests and diagnostics); sharded
// callers use ShardClock.
func (d *Domain) Now() uint64 { return d.shards[0].clock.Load() }

// shardOf maps a Var to its commit-clock shard by hashing the cell's
// address (Fibonacci multiply, high bits). Hashing the address instead of
// storing a shard index keeps Var at 24 bytes and needs no extra load on
// the hot path; it is stable because Go's heap does not move objects —
// the same property the address-ordered write-set locking in commit
// already depends on.
func (d *Domain) shardOf(v *Var) uint64 {
	if d.shardMask == 0 {
		return 0 // single-shard domain: skip the hash entirely
	}
	h := uint64(uintptr(unsafe.Pointer(v))) * 0x9e3779b97f4a7c15
	return (h >> 33) & d.shardMask
}

// Shard returns the commit-clock shard this Var hashes onto (in
// [0, Domain.NumShards())). Benchmarks use it to place working sets in
// known shards; it is not needed for correctness.
func (v *Var) Shard() int { return int(v.dom.shardOf(v)) }

// commitTick obtains a commit timestamp for a read-write transaction on
// shard s with the GV4 "pass on failure" scheme: try one CAS to advance
// the shard's clock; if a concurrent committer wins the race, adopt the
// clock's current value as our own timestamp instead of retrying. The GV4
// adoption proof holds per shard: concurrent commits that share a
// timestamp from the same shard clock necessarily have disjoint write
// sets, because each committer locks its entire write set *before*
// calling commitTick and holds the locks through publication — had the
// sets intersected, one committer would have observed the other's lock
// bit and aborted. Any reader whose snapshot for this shard satisfies
// rvs[s] ≥ wv sampled the shard clock after it reached wv, i.e. after
// both writers had locked their cells — so it either waits out the lock
// bits or sees the fully published values. Cross-shard commits tick each
// touched shard's clock once and publish each cell with its own shard's
// timestamp; ordering across shards is enforced by the lock bits (held
// over the whole multi-shard write-back), not by comparing clocks — see
// Txn.commit and DESIGN.md §9.
func (s *shard) commitTick() uint64 {
	old := s.clock.Load()
	if s.clock.CompareAndSwap(old, old+1) {
		return old + 1
	}
	return s.clock.Load()
}

// NewVar allocates a Var in this domain holding init.
func (d *Domain) NewVar(init uint64) *Var {
	v := &Var{dom: d}
	v.val.Store(init)
	return v
}

// NewVars allocates n zero-valued Vars in one backing array, for
// arena-style data structures (e.g. the HashMap node pool).
func (d *Domain) NewVars(n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i].dom = d
	}
	return vs
}

// InitVar prepares a zero Var embedded in a caller-allocated struct for use
// in this domain with initial value x. Must be called before the Var is
// shared with other goroutines.
func (d *Domain) InitVar(v *Var, x uint64) {
	v.dom = d
	v.val.Store(x)
	v.vlock.Store(0)
}

// Domain returns the domain the Var belongs to.
func (v *Var) Domain() *Domain { return v.dom }

// LoadDirect reads the Var outside any transaction. The load is atomic for
// this single cell; consistency across multiple cells is the caller's
// problem (SWOpt paths solve it with conflict-marker validation, Lock-mode
// code solves it by holding the lock).
func (v *Var) LoadDirect() uint64 { return v.val.Load() }

// LoadConsistent reads the Var outside any transaction, waiting out any
// in-flight writer (a committing transaction or a direct store holds the
// cell's version lock while updating it). Non-transactional code that must
// serialize against transaction commits — ALE's Lock-mode and SWOpt-mode
// accesses — uses this: because a committing transaction holds every
// write-set cell's lock until the whole write-back finishes, a
// lock-respecting reader can never observe a half-published commit.
func (v *Var) LoadConsistent() uint64 {
	_, val := v.sampleUnlocked()
	return val
}

// StoreDirect writes the Var outside any transaction, serializing correctly
// against transactions: it locks the cell, advances the cell's shard
// clock, and publishes the new version, so every transaction that began
// earlier and touches this cell will abort (or extend past it). This is
// exactly the effect a plain store by a non-transactional thread has on
// real HTM (cache-line invalidation kills the reader's transaction).
func (v *Var) StoreDirect(x uint64) {
	v.lockCell()
	wv := v.dom.shards[v.dom.shardOf(v)].clock.Add(1)
	v.val.Store(x)
	v.vlock.Store(wv << 1)
}

// AddDirect atomically adds delta to the Var outside any transaction and
// returns the new value, with the same conflict semantics as StoreDirect.
func (v *Var) AddDirect(delta uint64) uint64 {
	v.lockCell()
	wv := v.dom.shards[v.dom.shardOf(v)].clock.Add(1)
	n := v.val.Load() + delta
	v.val.Store(n)
	v.vlock.Store(wv << 1)
	return n
}

// SwapDirect atomically replaces the Var's value outside any transaction,
// returning the previous value, with the same conflict semantics as
// StoreDirect.
func (v *Var) SwapDirect(x uint64) uint64 {
	v.lockCell()
	wv := v.dom.shards[v.dom.shardOf(v)].clock.Add(1)
	old := v.val.Load()
	v.val.Store(x)
	v.vlock.Store(wv << 1)
	return old
}

// CASDirect performs a compare-and-swap outside any transaction, with the
// same conflict semantics as StoreDirect. It returns whether the swap
// happened.
func (v *Var) CASDirect(old, new uint64) bool {
	v.lockCell()
	if v.val.Load() != old {
		// Release without bumping the version: nothing changed.
		v.vlock.Store(v.vlock.Load() &^ lockBit)
		return false
	}
	wv := v.dom.shards[v.dom.shardOf(v)].clock.Add(1)
	v.val.Store(new)
	v.vlock.Store(wv << 1)
	return true
}

// lockCell spins until it owns the cell's lock bit.
func (v *Var) lockCell() {
	for spins := 0; ; spins++ {
		vl := v.vlock.Load()
		if vl&lockBit == 0 && v.vlock.CompareAndSwap(vl, vl|lockBit) {
			return
		}
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// sampleUnlocked returns the cell's (version, value) observed consistently,
// spinning past in-flight writers. Used by direct read-modify-write ops and
// tests.
func (v *Var) sampleUnlocked() (ver, val uint64) {
	for spins := 0; ; spins++ {
		v1 := v.vlock.Load()
		if v1&lockBit == 0 {
			x := v.val.Load()
			if v.vlock.Load() == v1 {
				return v1 >> 1, x
			}
			continue
		}
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// Version returns the cell's current committed version (test/diagnostic
// use). Versions are only comparable with the same cell's shard clock.
func (v *Var) Version() uint64 {
	ver, _ := v.sampleUnlocked()
	return ver
}

// getRseen pops a reclaimed read-set spill map from the pool, or reports
// none available. Cold path: only runs when a transaction's read set
// outgrows setSpill.
func (d *Domain) getRseen() map[*Var]struct{} {
	d.spillMu.Lock()
	defer d.spillMu.Unlock()
	if n := len(d.freeRseen); n > 0 {
		m := d.freeRseen[n-1]
		d.freeRseen = d.freeRseen[:n-1]
		return m
	}
	return nil
}

// getWidx is getRseen for write-set index maps.
func (d *Domain) getWidx() map[*Var]int {
	d.spillMu.Lock()
	defer d.spillMu.Unlock()
	if n := len(d.freeWidx); n > 0 {
		m := d.freeWidx[n-1]
		d.freeWidx = d.freeWidx[:n-1]
		return m
	}
	return nil
}

// retireSpill hands outsized spill maps released by Txn.cleanup to the
// epoch reclaimer: they re-enter the free pools only after two epoch
// advances, i.e. after every attempt in flight at release time has
// quiesced. TryAdvance runs here — on the cold release path, never on
// commit — so reclamation cannot stall committers.
func (d *Domain) retireSpill(rseen map[*Var]struct{}, widx map[*Var]int) {
	d.rec.Retire(func() {
		d.spillMu.Lock()
		defer d.spillMu.Unlock()
		if rseen != nil {
			clear(rseen)
			d.freeRseen = append(d.freeRseen, rseen)
		}
		if widx != nil {
			clear(widx)
			d.freeWidx = append(d.freeWidx, widx)
		}
	})
	d.rec.TryAdvance()
}
