package tm

import (
	"sync"
	"testing"
)

// shardedProfile is testProfile with an explicit shard count, so the
// multi-shard paths are exercised regardless of the host's GOMAXPROCS
// (auto-resolution would pick 1 shard on a single-core machine).
func shardedProfile(shards int) Profile {
	p := testProfile()
	p.Shards = shards
	return p
}

// varInShard allocates Vars until one hashes onto shard s.
func varInShard(t testing.TB, d *Domain, s int, init uint64) *Var {
	t.Helper()
	for i := 0; i < 4096; i++ {
		if v := d.NewVar(init); v.Shard() == s {
			return v
		}
	}
	t.Fatalf("no Var hashed onto shard %d in 4096 allocations", s)
	return nil
}

func TestShardAssignment(t *testing.T) {
	d := NewDomain(shardedProfile(8))
	if got := d.NumShards(); got != 8 {
		t.Fatalf("NumShards = %d, want 8", got)
	}
	// Retain every Var: an unreferenced NewVar result can be
	// stack-allocated by escape analysis, and one reused stack slot would
	// make every iteration hash identically.
	vars := make([]*Var, 1024)
	hit := make([]int, 8)
	for i := range vars {
		vars[i] = d.NewVar(0)
		v := vars[i]
		s := v.Shard()
		if s < 0 || s >= 8 {
			t.Fatalf("Shard() = %d, out of range [0,8)", s)
		}
		if again := v.Shard(); again != s {
			t.Fatalf("Shard() unstable: %d then %d", s, again)
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Errorf("shard %d never hit by 1024 Vars (distribution broken)", s)
		}
	}
}

func TestSingleShardDegenerates(t *testing.T) {
	d := NewDomain(shardedProfile(1))
	if got := d.NumShards(); got != 1 {
		t.Fatalf("NumShards = %d, want 1", got)
	}
	vs := d.NewVars(64)
	for i := range vs {
		if s := vs[i].Shard(); s != 0 {
			t.Fatalf("Shard() = %d on a 1-shard domain", s)
		}
	}
}

func TestAutoShardsDerivation(t *testing.T) {
	cases := []struct{ procs, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {6, 8}, {8, 8}, {12, 16},
		{48, 64}, {64, 64}, {96, 64}, {256, 64},
	}
	for _, tc := range cases {
		if got := autoShards(tc.procs); got != tc.want {
			t.Errorf("autoShards(%d) = %d, want %d", tc.procs, got, tc.want)
		}
	}
}

// TestShardClockIsolation: transactions confined to one shard must not
// advance — or even read — the other shards' clocks. This is the whole
// point of sharding: disjoint single-shard committers share no clock.
func TestShardClockIsolation(t *testing.T) {
	d := NewDomain(shardedProfile(4))
	a := varInShard(t, d, 1, 0)
	before := make([]uint64, 4)
	for s := range before {
		before[s] = d.ShardClock(s)
	}
	tx := d.NewTxn(1)
	for i := 0; i < 100; i++ {
		if ok, reason := tx.Run(func(tx *Txn) { tx.Add(a, 1) }); !ok {
			t.Fatalf("commit %d aborted: %v", i, reason)
		}
	}
	if got := d.ShardClock(1); got != before[1]+100 {
		t.Errorf("shard 1 clock = %d, want %d", got, before[1]+100)
	}
	for _, s := range []int{0, 2, 3} {
		if got := d.ShardClock(s); got != before[s] {
			t.Errorf("shard %d clock moved to %d (was %d) without any access",
				s, got, before[s])
		}
	}
	if cs := tx.CrossShard(); cs != 0 {
		t.Errorf("CrossShard = %d for single-shard transactions, want 0", cs)
	}
}

// TestCrossShardCounter: the second distinct shard touched bumps
// CrossShard exactly once per attempt, for reads and blind writes alike.
func TestCrossShardCounter(t *testing.T) {
	d := NewDomain(shardedProfile(4))
	a := varInShard(t, d, 0, 0)
	b := varInShard(t, d, 1, 0)
	c := varInShard(t, d, 2, 0)
	tx := d.NewTxn(1)

	if ok, _ := tx.Run(func(tx *Txn) { tx.Load(a) }); !ok {
		t.Fatal("single-shard txn aborted")
	}
	if got := tx.CrossShard(); got != 0 {
		t.Fatalf("CrossShard = %d after single-shard txn, want 0", got)
	}
	if ok, _ := tx.Run(func(tx *Txn) {
		tx.Load(a)
		tx.Store(b, 1) // second shard: cross-shard from here
		tx.Load(c)     // third shard: still the same attempt
	}); !ok {
		t.Fatal("cross-shard txn aborted")
	}
	if got := tx.CrossShard(); got != 1 {
		t.Fatalf("CrossShard = %d after one cross-shard txn, want 1", got)
	}
	if got := tx.Stats().CrossShard; got != 1 {
		t.Fatalf("Stats().CrossShard = %d, want 1", got)
	}
}

// TestCrossShardCommitPublishesPerShardVersions: a commit spanning shards
// ticks each touched shard's clock once and stamps every cell with its
// own shard's timestamp.
func TestCrossShardCommitPublishesPerShardVersions(t *testing.T) {
	d := NewDomain(shardedProfile(4))
	a := varInShard(t, d, 0, 0)
	b := varInShard(t, d, 3, 0)
	a0, b0 := d.ShardClock(0), d.ShardClock(3)
	tx := d.NewTxn(1)
	if ok, reason := tx.Run(func(tx *Txn) {
		tx.Store(a, 7)
		tx.Store(b, 9)
	}); !ok {
		t.Fatalf("cross-shard commit aborted: %v", reason)
	}
	if got := a.LoadDirect(); got != 7 {
		t.Errorf("a = %d, want 7", got)
	}
	if got := b.LoadDirect(); got != 9 {
		t.Errorf("b = %d, want 9", got)
	}
	if got := d.ShardClock(0); got != a0+1 {
		t.Errorf("shard 0 clock = %d, want %d (one tick)", got, a0+1)
	}
	if got := d.ShardClock(3); got != b0+1 {
		t.Errorf("shard 3 clock = %d, want %d (one tick)", got, b0+1)
	}
	if got, want := a.Version(), d.ShardClock(0); got != want {
		t.Errorf("a version = %d, want shard-0 timestamp %d", got, want)
	}
	if got, want := b.Version(), d.ShardClock(3); got != want {
		t.Errorf("b version = %d, want shard-3 timestamp %d", got, want)
	}
}

// TestCrossShardExtension: a load that trips over a newer version in one
// shard extends that shard's snapshot after revalidating reads in *all*
// shards, instead of aborting — the PR 4 extension generalized to the
// snapshot vector.
func TestCrossShardExtension(t *testing.T) {
	d := NewDomain(shardedProfile(4))
	a := varInShard(t, d, 0, 1)
	b1 := varInShard(t, d, 1, 2)
	b2 := varInShard(t, d, 1, 3)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(a)  // shard 0 snapshot
		_ = tx.Load(b1) // shard 1 snapshot
		// An unrelated committer advances shard 1 past our snapshot.
		b2.StoreDirect(30)
		// This load sees version > rvs[1]; extension revalidates a and b1
		// against the vector and slides shard 1's snapshot forward.
		if got := tx.Load(b2); got != 30 {
			t.Errorf("Load(b2) = %d, want 30", got)
		}
	})
	if !ok {
		t.Fatalf("extension txn aborted: %v", reason)
	}
	if got := tx.Extensions(); got != 1 {
		t.Errorf("Extensions = %d, want 1", got)
	}
}

// TestCrossShardFirstTouchRevalidates: touching a new shard revalidates
// the reads taken so far; if one of them has been overwritten, the
// transaction aborts rather than adopt a snapshot at which its past reads
// are no longer simultaneously valid. (A single-clock domain could have
// served the stale-but-consistent pair; the vector scheme gives that up
// for cross-shard transactions — the documented cost of not sharing
// clocks. DESIGN.md §9.)
func TestCrossShardFirstTouchRevalidates(t *testing.T) {
	d := NewDomain(shardedProfile(4))
	x := varInShard(t, d, 0, 1)
	y := varInShard(t, d, 1, 2)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(x)
		x.StoreDirect(100) // x moves after we read it
		_ = tx.Load(y)     // first touch of shard 1 must notice and abort
		t.Error("unreachable: first-touch revalidation must abort")
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want AbortConflict from first-touch revalidation",
			ok, reason)
	}
}

// TestCrossShardOpacityTornPair: the invariant the cross-shard ordering
// rule exists for. A writer transactionally keeps x (shard 0) and y
// (shard 1) equal; concurrent cross-shard readers — in both orders — must
// never observe x != y (a torn pair of same-commit writes). The write-set
// lock bits held over the whole multi-shard write-back plus first-touch /
// extension revalidation make a torn read impossible; this hammers the
// schedule under -race.
func TestCrossShardOpacityTornPair(t *testing.T) {
	d := NewDomain(shardedProfile(4))
	x := varInShard(t, d, 0, 0)
	y := varInShard(t, d, 1, 0)
	const iters = 20000
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		tx := d.NewTxn(99)
		for i := uint64(1); i <= iters; i++ {
			for {
				ok, _ := tx.Run(func(tx *Txn) {
					tx.Store(x, i)
					tx.Store(y, i)
				})
				if ok {
					break
				}
			}
		}
		close(stop)
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(id int) { // readers, one per order
			defer wg.Done()
			tx := d.NewTxn(uint64(id))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var a, b uint64
				ok, _ := tx.Run(func(tx *Txn) {
					if id == 0 {
						a, b = tx.Load(x), tx.Load(y)
					} else {
						b, a = tx.Load(y), tx.Load(x)
					}
				})
				if ok && a != b {
					t.Errorf("torn pair: x=%d y=%d", a, b)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := x.LoadDirect(); got != iters {
		t.Fatalf("x = %d after writer drain, want %d", got, iters)
	}
}

// TestCommitTickAdoptionSharded: the GV4 adoption proof holds per shard —
// disjoint committers publish versions bounded by their own shard's
// clock, and each shard's clock never exceeds the commits that touched
// it.
func TestCommitTickAdoptionSharded(t *testing.T) {
	d := NewDomain(shardedProfile(8))
	const workers, perWorker = 8, 500
	vars := make([]*Var, workers)
	for i := range vars {
		vars[i] = d.NewVar(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := d.NewTxn(uint64(id) + 1)
			for i := 0; i < perWorker; i++ {
				for {
					if ok, _ := tx.Run(func(tx *Txn) { tx.Add(vars[id], 1) }); ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var totalTicks uint64
	for s := 0; s < d.NumShards(); s++ {
		totalTicks += d.ShardClock(s)
	}
	for i := range vars {
		if got := vars[i].LoadDirect(); got != perWorker {
			t.Errorf("vars[%d] = %d, want %d", i, got, perWorker)
		}
		if ver, clk := vars[i].Version(), d.ShardClock(vars[i].Shard()); ver > clk {
			t.Errorf("vars[%d] version %d exceeds its shard clock %d", i, ver, clk)
		}
	}
	// With adoption, committers may tick fewer than once per commit —
	// never more, summed across shards.
	if totalTicks > workers*perWorker {
		t.Errorf("Σ shard clocks = %d, exceeds one tick per commit (%d)",
			totalTicks, workers*perWorker)
	}
}

// TestCrossShardZeroAllocs: the snapshot vector, shard masks, and
// per-shard commit timestamps all live on the descriptor, so even a
// cross-shard read-write transaction allocates nothing once warm.
func TestCrossShardZeroAllocs(t *testing.T) {
	d := NewDomain(shardedProfile(8))
	a := varInShard(t, d, 0, 0)
	b := varInShard(t, d, 5, 0)
	tx := d.NewTxn(1)
	body := func(tx *Txn) {
		tx.Add(a, 1)
		tx.Add(b, 1)
	}
	if ok, reason := tx.Run(body); !ok {
		t.Fatalf("warm-up aborted: %v", reason)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if ok, _ := tx.Run(body); !ok {
			t.Fatal("txn aborted")
		}
	})
	if allocs != 0 {
		t.Errorf("cross-shard txn allocates %.1f times/op, want 0", allocs)
	}
}

// TestSpillMapsReclaimed: spill maps released by an outsized transaction
// re-enter the domain's free pool only after the epoch grace period, and
// a later outsized transaction reuses the pooled map instead of
// allocating.
func TestSpillMapsReclaimed(t *testing.T) {
	d := NewDomain(shardedProfile(2))
	const n = spillHighWater + 8
	vars := d.NewVars(n)
	tx := d.NewTxn(1)
	big := func(tx *Txn) {
		for i := range vars {
			tx.Load(&vars[i])
		}
	}
	if ok, reason := tx.Run(big); !ok {
		t.Fatalf("outsized txn aborted: %v", reason)
	}
	// cleanup retired the read-set spill map; it waits out the grace
	// period in the reclaimer's bins.
	if got := d.rec.Pending(); got != 1 {
		t.Fatalf("Pending = %d after spill release, want 1", got)
	}
	d.rec.TryAdvance()
	d.rec.TryAdvance()
	d.spillMu.Lock()
	pooled := len(d.freeRseen)
	d.spillMu.Unlock()
	if pooled != 1 {
		t.Fatalf("free pool holds %d read-set maps after grace, want 1", pooled)
	}
	// The next spill consumes the pooled map.
	if ok, reason := tx.Run(big); !ok {
		t.Fatalf("second outsized txn aborted: %v", reason)
	}
	d.spillMu.Lock()
	pooled = len(d.freeRseen)
	d.spillMu.Unlock()
	if pooled != 0 {
		t.Fatalf("free pool holds %d maps mid-reuse cycle, want 0 (consumed)", pooled)
	}
}
