package tm

import (
	"sync"
	"testing"
	"testing/quick"
)

// opcode for the property tests' little batch language.
type batchOp struct {
	Store bool
	Cell  uint8
	Val   uint64
}

// TestQuickSequentialEquivalence: applying random batches of loads/stores
// through transactions must be indistinguishable from applying them to a
// plain array, when there is no concurrency. This pins down the redo-log
// (read-own-write) semantics.
func TestQuickSequentialEquivalence(t *testing.T) {
	f := func(batches [][]batchOp) bool {
		const cells = 8
		d := newTestDomain()
		vars := d.NewVars(cells)
		model := make([]uint64, cells)
		tx := d.NewTxn(1)
		for _, batch := range batches {
			batch := batch
			txReads := []uint64{}
			ok, _ := tx.Run(func(tx *Txn) {
				for _, op := range batch {
					c := int(op.Cell) % cells
					if op.Store {
						tx.Store(&vars[c], op.Val)
					} else {
						txReads = append(txReads, tx.Load(&vars[c]))
					}
				}
			})
			if !ok {
				return false // no concurrency: must always commit
			}
			// Replay on the model and compare reads.
			i := 0
			for _, op := range batch {
				c := int(op.Cell) % cells
				if op.Store {
					model[c] = op.Val
				} else {
					if txReads[i] != model[c] {
						return false
					}
					i++
				}
			}
		}
		for c := range model {
			if vars[c].LoadDirect() != model[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickAbortedBatchesInvisible: randomly abort some batches; aborted
// batches must leave no trace.
func TestQuickAbortedBatchesInvisible(t *testing.T) {
	f := func(batches [][]batchOp, abortMask uint64) bool {
		const cells = 8
		d := newTestDomain()
		vars := d.NewVars(cells)
		model := make([]uint64, cells)
		tx := d.NewTxn(1)
		for bi, batch := range batches {
			abort := abortMask&(1<<(uint(bi)%64)) != 0
			ok, reason := tx.Run(func(tx *Txn) {
				for _, op := range batch {
					c := int(op.Cell) % cells
					if op.Store {
						tx.Store(&vars[c], op.Val)
					} else {
						_ = tx.Load(&vars[c])
					}
				}
				if abort {
					tx.Abort(AbortExplicit)
				}
			})
			if abort && (ok || reason != AbortExplicit) {
				return false
			}
			if !abort {
				if !ok {
					return false
				}
				for _, op := range batch {
					if op.Store {
						model[int(op.Cell)%cells] = op.Val
					}
				}
			}
		}
		for c := range model {
			if vars[c].LoadDirect() != model[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSnapshotConsistency: N cells are always updated together to the
// same value by committing transactions; concurrent read-only transactions
// must always see all cells equal (opacity / atomicity of commits), for
// arbitrary numbers of updates.
func TestQuickSnapshotConsistency(t *testing.T) {
	f := func(seed uint64, rounds uint8) bool {
		const cells = 4
		d := newTestDomain()
		vars := d.NewVars(cells)
		stop := make(chan struct{})
		bad := make(chan struct{}, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // reader
			defer wg.Done()
			tx := d.NewTxn(seed + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx.Run(func(tx *Txn) {
					first := tx.Load(&vars[0])
					for i := 1; i < cells; i++ {
						if tx.Load(&vars[i]) != first {
							select {
							case bad <- struct{}{}:
							default:
							}
						}
					}
				})
			}
		}()
		tx := d.NewTxn(seed + 2)
		n := int(rounds)%50 + 10
		for r := 1; r <= n; r++ {
			for {
				ok, _ := tx.Run(func(tx *Txn) {
					for i := 0; i < cells; i++ {
						tx.Store(&vars[i], uint64(r))
					}
				})
				if ok {
					break
				}
			}
		}
		close(stop)
		wg.Wait()
		select {
		case <-bad:
			return false
		default:
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
