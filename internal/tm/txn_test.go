package tm

import (
	"sync"
	"testing"
)

func testProfile() Profile {
	return Profile{Name: "test", Enabled: true, ReadCap: 1 << 20, WriteCap: 1 << 20}
}

func newTestDomain() *Domain { return NewDomain(testProfile()) }

func TestCommitPublishesWrites(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(1)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		if got := tx.Load(v); got != 1 {
			t.Errorf("Load = %d, want 1", got)
		}
		tx.Store(v, 42)
		if got := tx.Load(v); got != 42 {
			t.Errorf("read-own-write = %d, want 42", got)
		}
	})
	if !ok || reason != AbortNone {
		t.Fatalf("Run = (%v, %v), want commit", ok, reason)
	}
	if got := v.LoadDirect(); got != 42 {
		t.Errorf("after commit LoadDirect = %d, want 42", got)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(7)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		tx.Store(v, 99)
		tx.Abort(AbortExplicit)
	})
	if ok || reason != AbortExplicit {
		t.Fatalf("Run = (%v, %v), want explicit abort", ok, reason)
	}
	if got := v.LoadDirect(); got != 7 {
		t.Errorf("after abort LoadDirect = %d, want 7", got)
	}
}

func TestUserPanicPropagatesAndCleansUp(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		tx.Run(func(tx *Txn) {
			tx.Store(v, 5)
			panic("boom")
		})
	}()
	if tx.Active() {
		t.Error("Txn still active after user panic")
	}
	if got := v.LoadDirect(); got != 0 {
		t.Errorf("write leaked through panic: %d", got)
	}
	// The abandoned attempt must be accounted (AbortPanic) so the stats
	// invariant holds.
	st := tx.Stats()
	if st.Aborts[AbortPanic] != 1 {
		t.Errorf("Aborts[AbortPanic] = %d, want 1", st.Aborts[AbortPanic])
	}
	if tx.LastReason() != AbortPanic {
		t.Errorf("LastReason = %v, want AbortPanic", tx.LastReason())
	}
	assertStatsInvariant(t, tx)
	// The descriptor must be reusable.
	if ok, _ := tx.Run(func(tx *Txn) { tx.Store(v, 5) }); !ok {
		t.Error("Txn not reusable after user panic")
	}
	assertStatsInvariant(t, tx)
}

// assertStatsInvariant checks starts == commits + Σaborts on a quiescent
// descriptor.
func assertStatsInvariant(t *testing.T, tx *Txn) {
	t.Helper()
	st := tx.Stats()
	var sum uint64
	for _, n := range st.Aborts {
		sum += n
	}
	if st.Starts != st.Commits+sum {
		t.Errorf("stats invariant broken: starts=%d commits=%d Σaborts=%d (%+v)",
			st.Starts, st.Commits, sum, st)
	}
}

func TestDirectStoreAbortsReader(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	other := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(other)
		// A concurrent thread (simulated inline) writes v and then other.
		v.StoreDirect(1)
		other.StoreDirect(1)
		// Reading either cell now must abort: v's version is past even an
		// extended snapshot's reach because other (already in our read
		// set) changed too, so the extension revalidation fails.
		_ = tx.Load(v)
		t.Error("Load returned after conflicting direct store")
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort", ok, reason)
	}
}

// TestExtensionAllowsUnrelatedCommit: a direct write to a cell *outside*
// the read set bumps the clock; a subsequent load of that cell must
// succeed by extending the snapshot instead of aborting (the false
// conflict the pre-extension substrate manufactured).
func TestExtensionAllowsUnrelatedCommit(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(1)
	b := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		if got := tx.Load(a); got != 1 {
			t.Errorf("Load(a) = %d, want 1", got)
		}
		// Unrelated committer (simulated inline) advances the clock and
		// stamps b with a version past our begin-time snapshot.
		b.StoreDirect(7)
		if got := tx.Load(b); got != 7 {
			t.Errorf("Load(b) = %d, want 7", got)
		}
	})
	if !ok {
		t.Fatalf("Run aborted with %v; extension should have absorbed the unrelated commit", reason)
	}
	st := tx.Stats()
	if st.Extensions != 1 {
		t.Errorf("Extensions = %d, want 1", st.Extensions)
	}
	if tx.Extensions() != st.Extensions {
		t.Errorf("Extensions() = %d, disagrees with Stats()", tx.Extensions())
	}
}

// TestDisableExtensionRestoresAbort: with the ablation switch on, the
// same unrelated-commit schedule must abort with AbortConflict (the
// pre-extension behaviour EXPERIMENTS.md's extension ablation measures).
func TestDisableExtensionRestoresAbort(t *testing.T) {
	p := Profile{Name: "noext", Enabled: true, ReadCap: 1 << 10, WriteCap: 1 << 10,
		DisableExtension: true}
	d := NewDomain(p)
	a := d.NewVar(1)
	b := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(a)
		b.StoreDirect(7)
		_ = tx.Load(b)
		t.Error("Load returned despite DisableExtension")
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort", ok, reason)
	}
	if n := tx.Extensions(); n != 0 {
		t.Errorf("Extensions = %d, want 0 with extension disabled", n)
	}
}

// TestExtensionFailsOnReadSetChange: if a cell already in the read set
// changed, extension must refuse and the load must abort — accepting it
// would break opacity.
func TestExtensionFailsOnReadSetChange(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(1)
	b := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(a)
		a.StoreDirect(2) // invalidates our read of a
		b.StoreDirect(7) // makes the next load need an extension
		_ = tx.Load(b)   // extension must refuse: a moved
		t.Error("Load returned despite invalidated read set")
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort", ok, reason)
	}
	if n := tx.Extensions(); n != 0 {
		t.Errorf("Extensions = %d, want 0", n)
	}
}

// TestExtensionPreservesCommitValidation: an extended snapshot must not
// let the commit-time read validation accept a cell that changed after it
// was read (extension slides rv forward only when all reads are intact at
// that moment; later invalidations still abort at commit).
func TestExtensionPreservesCommitValidation(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(1)
	b := d.NewVar(0)
	w := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(a)
		b.StoreDirect(7) // unrelated: triggers extension on next load
		_ = tx.Load(b)
		tx.Store(w, 1)
		a.StoreDirect(2) // invalidates a after the extension
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort at commit", ok, reason)
	}
	if got := w.LoadDirect(); got != 0 {
		t.Errorf("aborted txn published w = %d", got)
	}
}

func TestCommitTimeReadValidation(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(0)
	b := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(a)
		tx.Store(b, 1)
		// After we read a, a direct writer changes it. Our commit must
		// fail read validation.
		a.StoreDirect(9)
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort at commit", ok, reason)
	}
	if got := b.LoadDirect(); got != 0 {
		t.Errorf("aborted txn published b = %d", got)
	}
}

func TestReadCapacity(t *testing.T) {
	p := testProfile()
	p.ReadCap = 4
	d := NewDomain(p)
	vs := d.NewVars(10)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		for i := range vs {
			_ = tx.Load(&vs[i])
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("Run = (%v, %v), want capacity abort", ok, reason)
	}
}

func TestWriteCapacity(t *testing.T) {
	p := testProfile()
	p.WriteCap = 4
	d := NewDomain(p)
	vs := d.NewVars(10)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		for i := range vs {
			tx.Store(&vs[i], 1)
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("Run = (%v, %v), want capacity abort", ok, reason)
	}
}

func TestDuplicateAccessesDoNotCountTwice(t *testing.T) {
	p := testProfile()
	p.ReadCap = 2
	p.WriteCap = 2
	d := NewDomain(p)
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, _ := tx.Run(func(tx *Txn) {
		for i := 0; i < 100; i++ {
			_ = tx.Load(v)
			tx.Store(v, uint64(i))
		}
	})
	if !ok {
		t.Fatal("repeated access to one cell hit capacity")
	}
}

func TestDisabledProfile(t *testing.T) {
	d := NewDomain(Profile{Name: "noHTM", Enabled: false})
	tx := d.NewTxn(1)
	ran := false
	ok, reason := tx.Run(func(tx *Txn) { ran = true })
	if ok || reason != AbortDisabled {
		t.Fatalf("Run = (%v, %v), want disabled abort", ok, reason)
	}
	if ran {
		t.Error("body ran on a disabled-HTM domain")
	}
}

func TestSpuriousAlways(t *testing.T) {
	p := testProfile()
	p.SpuriousProb = 1.0
	d := NewDomain(p)
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) { _ = tx.Load(v) })
	if ok || reason != AbortSpurious {
		t.Fatalf("Run = (%v, %v), want spurious abort", ok, reason)
	}
}

func TestSpuriousRoughRate(t *testing.T) {
	p := testProfile()
	p.SpuriousProb = 0.05
	d := NewDomain(p)
	v := d.NewVar(0)
	tx := d.NewTxn(7)
	const trials = 20000
	spurious := 0
	for i := 0; i < trials; i++ {
		ok, reason := tx.Run(func(tx *Txn) { _ = tx.Load(v) })
		if !ok && reason == AbortSpurious {
			spurious++
		}
	}
	rate := float64(spurious) / trials
	if rate < 0.03 || rate > 0.08 {
		t.Errorf("spurious rate = %.4f, want ~0.05", rate)
	}
}

func TestCASDirect(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(3)
	if !v.CASDirect(3, 4) {
		t.Fatal("CASDirect(3,4) failed")
	}
	if v.CASDirect(3, 5) {
		t.Fatal("CASDirect(3,5) succeeded on stale expected value")
	}
	if got := v.LoadDirect(); got != 4 {
		t.Errorf("value = %d, want 4", got)
	}
}

func TestAddDirect(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(10)
	if got := v.AddDirect(5); got != 15 {
		t.Errorf("AddDirect = %d, want 15", got)
	}
	if got := v.LoadDirect(); got != 15 {
		t.Errorf("value = %d, want 15", got)
	}
}

func TestTxnAdd(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(10)
	tx := d.NewTxn(1)
	ok, _ := tx.Run(func(tx *Txn) {
		if got := tx.Add(v, 7); got != 17 {
			t.Errorf("Add = %d, want 17", got)
		}
	})
	if !ok || v.LoadDirect() != 17 {
		t.Errorf("after commit value = %d, want 17", v.LoadDirect())
	}
}

func TestStatsCounting(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	tx.Run(func(tx *Txn) { tx.Store(v, 1) })
	tx.Run(func(tx *Txn) { tx.Abort(AbortExplicit) })
	st := tx.Stats()
	if st.Starts != 2 || st.Commits != 1 || st.Aborts[AbortExplicit] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if tx.LastReason() != AbortExplicit {
		t.Errorf("LastReason = %v", tx.LastReason())
	}
}

// TestConcurrentCounter hammers one cell from many goroutines, each
// retrying its transaction until commit; the final value must equal the
// total number of commits (atomicity + no lost updates).
func TestConcurrentCounter(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := d.NewTxn(uint64(id) + 1)
			for i := 0; i < perWorker; i++ {
				for {
					ok, _ := tx.Run(func(tx *Txn) { tx.Add(v, 1) })
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := v.LoadDirect(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentTransfers runs the classic bank-transfer opacity stress:
// concurrent transactions move value between accounts; the total must be
// conserved, and no transaction may ever observe a broken invariant
// mid-flight (the observation itself is done transactionally).
func TestConcurrentTransfers(t *testing.T) {
	d := newTestDomain()
	const accounts = 16
	const initial = 1000
	vars := d.NewVars(accounts)
	for i := range vars {
		vars[i].StoreDirect(initial)
	}
	const workers, ops = 8, 3000
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := d.NewTxn(uint64(id) + 100)
			rng := uint64(id*2654435761 + 1)
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < ops; i++ {
				from := int(next() % accounts)
				to := int(next() % accounts)
				if from == to {
					continue
				}
				for {
					ok, _ := tx.Run(func(tx *Txn) {
						a := tx.Load(&vars[from])
						b := tx.Load(&vars[to])
						if a == 0 {
							return
						}
						tx.Store(&vars[from], a-1)
						tx.Store(&vars[to], b+1)
					})
					if ok {
						break
					}
				}
				// Observe the invariant transactionally; must always hold.
				for {
					ok, _ := tx.Run(func(tx *Txn) {
						var sum uint64
						for j := range vars {
							sum += tx.Load(&vars[j])
						}
						if sum != accounts*initial {
							select {
							case errs <- "invariant broken inside transaction":
							default:
							}
						}
					})
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	var sum uint64
	for i := range vars {
		sum += vars[i].LoadDirect()
	}
	if sum != accounts*initial {
		t.Errorf("total = %d, want %d", sum, accounts*initial)
	}
}

// TestMixedDirectAndTxn interleaves direct writers with transactions on a
// pair of cells that must stay equal; transactions copy a->b, the direct
// writer bumps a. Transactions must never commit a stale copy over a newer
// a (serializability against direct writes).
func TestMixedDirectAndTxn(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(0)
	b := d.NewVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a.StoreDirect(i)
		}
	}()
	tx := d.NewTxn(5)
	for i := 0; i < 5000; i++ {
		tx.Run(func(tx *Txn) {
			x := tx.Load(a)
			tx.Store(b, x)
		})
	}
	close(stop)
	wg.Wait()
	// After quiescence, one last copy must make them exactly equal.
	for {
		ok, _ := tx.Run(func(tx *Txn) { tx.Store(b, tx.Load(a)) })
		if ok {
			break
		}
	}
	if a.LoadDirect() != b.LoadDirect() {
		t.Errorf("a=%d b=%d after final copy", a.LoadDirect(), b.LoadDirect())
	}
}

func TestCrossDomainUsePanics(t *testing.T) {
	d1 := newTestDomain()
	d2 := newTestDomain()
	v2 := d2.NewVar(0)
	tx := d1.NewTxn(1)
	defer func() {
		if recover() == nil {
			t.Error("cross-domain Load did not panic")
		}
	}()
	tx.Run(func(tx *Txn) { _ = tx.Load(v2) })
}

func TestRunWhileActivePanics(t *testing.T) {
	d := newTestDomain()
	tx := d.NewTxn(1)
	defer func() {
		if recover() == nil {
			t.Error("nested Run did not panic")
		}
	}()
	tx.Run(func(tx *Txn) { tx.Run(func(*Txn) {}) })
}

// TestCleanupReleasesOversizedSets: one giant transaction (past
// spillHighWater) must not pin its sets and spill maps for the
// descriptor's lifetime; cleanup drops them back to nil. Modest spilled
// sets stay pooled.
func TestCleanupReleasesOversizedSets(t *testing.T) {
	d := newTestDomain()
	vs := d.NewVars(spillHighWater + 10)
	tx := d.NewTxn(1)

	// A spilled-but-modest transaction retains its maps for reuse.
	ok, _ := tx.Run(func(tx *Txn) {
		for i := 0; i < 2*setSpill; i++ {
			_ = tx.Load(&vs[i])
			tx.Store(&vs[i], 1)
		}
	})
	if !ok {
		t.Fatal("modest txn aborted")
	}
	if tx.rseen == nil || tx.windex == nil {
		t.Error("modest spill maps were released; want pooled")
	}
	if cap(tx.reads) == 0 || cap(tx.wkeys) == 0 {
		t.Error("modest set slices were released; want pooled")
	}

	// A giant transaction releases everything at cleanup.
	ok, _ = tx.Run(func(tx *Txn) {
		for i := range vs {
			_ = tx.Load(&vs[i])
			tx.Store(&vs[i], 2)
		}
	})
	if !ok {
		t.Fatal("giant txn aborted")
	}
	if tx.reads != nil || tx.rseen != nil {
		t.Error("oversized read set retained after cleanup")
	}
	if tx.wkeys != nil || tx.wvals != nil || tx.windex != nil {
		t.Error("oversized write set retained after cleanup")
	}

	// The descriptor must still work after the release.
	ok, _ = tx.Run(func(tx *Txn) { tx.Store(&vs[0], 3) })
	if !ok || vs[0].LoadDirect() != 3 {
		t.Error("descriptor unusable after high-water release")
	}
	assertStatsInvariant(t, tx)
}

// TestCleanupReleasesOversizedSetsOnAbort: the high-water release must
// also fire on the abort path (capacity probes abort by construction).
func TestCleanupReleasesOversizedSetsOnAbort(t *testing.T) {
	d := newTestDomain()
	vs := d.NewVars(spillHighWater + 10)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		for i := range vs {
			_ = tx.Load(&vs[i])
		}
		tx.Abort(AbortExplicit)
	})
	if ok || reason != AbortExplicit {
		t.Fatalf("Run = (%v, %v), want explicit abort", ok, reason)
	}
	if tx.reads != nil || tx.rseen != nil {
		t.Error("oversized read set retained after aborting cleanup")
	}
}

// TestCommitAllocationFree: a warmed descriptor running a small
// read-write transaction must not allocate — the engine's zero-alloc fast
// path depends on it.
func TestCommitAllocationFree(t *testing.T) {
	d := newTestDomain()
	vs := d.NewVars(8)
	tx := d.NewTxn(1)
	body := func(tx *Txn) {
		for i := range vs {
			tx.Store(&vs[i], tx.Load(&vs[i])+1)
		}
	}
	if ok, reason := tx.Run(body); !ok { // warm-up
		t.Fatalf("warm-up aborted: %v", reason)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if ok, _ := tx.Run(body); !ok {
			t.Fatal("txn aborted")
		}
	})
	if allocs != 0 {
		t.Errorf("read-write commit allocates %.1f times/op, want 0", allocs)
	}
}

// TestExtensionAllocationFree: the extension path itself (unrelated
// commit absorbed mid-transaction) must not allocate either.
func TestExtensionAllocationFree(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(0)
	b := d.NewVar(0)
	tx := d.NewTxn(1)
	body := func(tx *Txn) {
		_ = tx.Load(a)
		b.StoreDirect(1) // forces an extension at the next load
		_ = tx.Load(b)
	}
	if ok, reason := tx.Run(body); !ok {
		t.Fatalf("warm-up aborted: %v", reason)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if ok, _ := tx.Run(body); !ok {
			t.Fatal("txn aborted")
		}
	})
	if allocs != 0 {
		t.Errorf("extension path allocates %.1f times/op, want 0", allocs)
	}
}

// TestCommitTickAdoption: commitTick must hand out a usable timestamp
// even when it loses the CAS race; concurrent disjoint committers all
// succeed and publish versions ≤ the final clock value.
func TestCommitTickAdoption(t *testing.T) {
	d := newTestDomain()
	const workers, perWorker = 8, 2000
	vars := d.NewVars(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := d.NewTxn(uint64(id) + 1)
			for i := 0; i < perWorker; i++ {
				for {
					ok, _ := tx.Run(func(tx *Txn) { tx.Add(&vars[id], 1) })
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	clock := d.Now()
	for i := range vars {
		if got := vars[i].LoadDirect(); got != perWorker {
			t.Errorf("vars[%d] = %d, want %d", i, got, perWorker)
		}
		if ver := vars[i].Version(); ver > clock {
			t.Errorf("vars[%d] version %d exceeds clock %d", i, ver, clock)
		}
	}
	// With adoption, N disjoint committers may tick the clock fewer than
	// N times — but never more.
	if clock > workers*perWorker {
		t.Errorf("clock = %d, exceeds one tick per commit (%d)", clock, workers*perWorker)
	}
}

// TestAbortNSMeasuresDiscardedWork drives aborting and committing
// attempts under a virtual nanotime hook and checks AbortNS accumulates
// exactly the aborted attempts' begin-to-abort durations.
func TestAbortNSMeasuresDiscardedWork(t *testing.T) {
	d := newTestDomain()
	var now int64
	d.SetNanotime(func() int64 { return now })
	v := d.NewVar(0)
	tx := d.NewTxn(1)

	// Committing attempt: advances the virtual clock but must not count.
	ok, _ := tx.Run(func(tx *Txn) {
		now += 100
		tx.Store(v, 1)
	})
	if !ok {
		t.Fatal("commit attempt aborted")
	}
	if got := tx.AbortNS(); got != 0 {
		t.Errorf("AbortNS after commit = %d, want 0", got)
	}

	// Explicit abort 70ns into the attempt.
	ok, reason := tx.Run(func(tx *Txn) {
		now += 70
		tx.Abort(AbortExplicit)
	})
	if ok || reason != AbortExplicit {
		t.Fatalf("Run = (%v, %v), want explicit abort", ok, reason)
	}
	if got := tx.AbortNS(); got != 70 {
		t.Errorf("AbortNS after abort = %d, want 70", got)
	}

	// User panic 30ns in: abandoned work still counts.
	func() {
		defer func() { recover() }()
		tx.Run(func(tx *Txn) {
			now += 30
			panic("boom")
		})
	}()
	if got := tx.AbortNS(); got != 100 {
		t.Errorf("AbortNS after user panic = %d, want 100", got)
	}
	if got := tx.Stats().AbortNS; got != 100 {
		t.Errorf("Stats().AbortNS = %d, want 100", got)
	}
}

// TestAbortNSZeroWithoutHook: without SetNanotime the measurement is off
// and AbortNS stays zero no matter how many aborts happen.
func TestAbortNSZeroWithoutHook(t *testing.T) {
	d := newTestDomain()
	tx := d.NewTxn(1)
	for i := 0; i < 3; i++ {
		tx.Run(func(tx *Txn) { tx.Abort(AbortExplicit) })
	}
	if got := tx.AbortNS(); got != 0 {
		t.Errorf("AbortNS without hook = %d, want 0", got)
	}
}
