package tm

import (
	"sync"
	"testing"
)

func testProfile() Profile {
	return Profile{Name: "test", Enabled: true, ReadCap: 1 << 20, WriteCap: 1 << 20}
}

func newTestDomain() *Domain { return NewDomain(testProfile()) }

func TestCommitPublishesWrites(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(1)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		if got := tx.Load(v); got != 1 {
			t.Errorf("Load = %d, want 1", got)
		}
		tx.Store(v, 42)
		if got := tx.Load(v); got != 42 {
			t.Errorf("read-own-write = %d, want 42", got)
		}
	})
	if !ok || reason != AbortNone {
		t.Fatalf("Run = (%v, %v), want commit", ok, reason)
	}
	if got := v.LoadDirect(); got != 42 {
		t.Errorf("after commit LoadDirect = %d, want 42", got)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(7)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		tx.Store(v, 99)
		tx.Abort(AbortExplicit)
	})
	if ok || reason != AbortExplicit {
		t.Fatalf("Run = (%v, %v), want explicit abort", ok, reason)
	}
	if got := v.LoadDirect(); got != 7 {
		t.Errorf("after abort LoadDirect = %d, want 7", got)
	}
}

func TestUserPanicPropagatesAndCleansUp(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		tx.Run(func(tx *Txn) {
			tx.Store(v, 5)
			panic("boom")
		})
	}()
	if tx.Active() {
		t.Error("Txn still active after user panic")
	}
	if got := v.LoadDirect(); got != 0 {
		t.Errorf("write leaked through panic: %d", got)
	}
	// The descriptor must be reusable.
	if ok, _ := tx.Run(func(tx *Txn) { tx.Store(v, 5) }); !ok {
		t.Error("Txn not reusable after user panic")
	}
}

func TestDirectStoreAbortsReader(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	other := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(other)
		// A concurrent thread (simulated inline) writes v and then other.
		v.StoreDirect(1)
		other.StoreDirect(1)
		// Reading either cell now must abort: their versions are past our
		// snapshot.
		_ = tx.Load(v)
		t.Error("Load returned after conflicting direct store")
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort", ok, reason)
	}
}

func TestCommitTimeReadValidation(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(0)
	b := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		_ = tx.Load(a)
		tx.Store(b, 1)
		// After we read a, a direct writer changes it. Our commit must
		// fail read validation.
		a.StoreDirect(9)
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort at commit", ok, reason)
	}
	if got := b.LoadDirect(); got != 0 {
		t.Errorf("aborted txn published b = %d", got)
	}
}

func TestReadCapacity(t *testing.T) {
	p := testProfile()
	p.ReadCap = 4
	d := NewDomain(p)
	vs := d.NewVars(10)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		for i := range vs {
			_ = tx.Load(&vs[i])
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("Run = (%v, %v), want capacity abort", ok, reason)
	}
}

func TestWriteCapacity(t *testing.T) {
	p := testProfile()
	p.WriteCap = 4
	d := NewDomain(p)
	vs := d.NewVars(10)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) {
		for i := range vs {
			tx.Store(&vs[i], 1)
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("Run = (%v, %v), want capacity abort", ok, reason)
	}
}

func TestDuplicateAccessesDoNotCountTwice(t *testing.T) {
	p := testProfile()
	p.ReadCap = 2
	p.WriteCap = 2
	d := NewDomain(p)
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, _ := tx.Run(func(tx *Txn) {
		for i := 0; i < 100; i++ {
			_ = tx.Load(v)
			tx.Store(v, uint64(i))
		}
	})
	if !ok {
		t.Fatal("repeated access to one cell hit capacity")
	}
}

func TestDisabledProfile(t *testing.T) {
	d := NewDomain(Profile{Name: "noHTM", Enabled: false})
	tx := d.NewTxn(1)
	ran := false
	ok, reason := tx.Run(func(tx *Txn) { ran = true })
	if ok || reason != AbortDisabled {
		t.Fatalf("Run = (%v, %v), want disabled abort", ok, reason)
	}
	if ran {
		t.Error("body ran on a disabled-HTM domain")
	}
}

func TestSpuriousAlways(t *testing.T) {
	p := testProfile()
	p.SpuriousProb = 1.0
	d := NewDomain(p)
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *Txn) { _ = tx.Load(v) })
	if ok || reason != AbortSpurious {
		t.Fatalf("Run = (%v, %v), want spurious abort", ok, reason)
	}
}

func TestSpuriousRoughRate(t *testing.T) {
	p := testProfile()
	p.SpuriousProb = 0.05
	d := NewDomain(p)
	v := d.NewVar(0)
	tx := d.NewTxn(7)
	const trials = 20000
	spurious := 0
	for i := 0; i < trials; i++ {
		ok, reason := tx.Run(func(tx *Txn) { _ = tx.Load(v) })
		if !ok && reason == AbortSpurious {
			spurious++
		}
	}
	rate := float64(spurious) / trials
	if rate < 0.03 || rate > 0.08 {
		t.Errorf("spurious rate = %.4f, want ~0.05", rate)
	}
}

func TestCASDirect(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(3)
	if !v.CASDirect(3, 4) {
		t.Fatal("CASDirect(3,4) failed")
	}
	if v.CASDirect(3, 5) {
		t.Fatal("CASDirect(3,5) succeeded on stale expected value")
	}
	if got := v.LoadDirect(); got != 4 {
		t.Errorf("value = %d, want 4", got)
	}
}

func TestAddDirect(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(10)
	if got := v.AddDirect(5); got != 15 {
		t.Errorf("AddDirect = %d, want 15", got)
	}
	if got := v.LoadDirect(); got != 15 {
		t.Errorf("value = %d, want 15", got)
	}
}

func TestTxnAdd(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(10)
	tx := d.NewTxn(1)
	ok, _ := tx.Run(func(tx *Txn) {
		if got := tx.Add(v, 7); got != 17 {
			t.Errorf("Add = %d, want 17", got)
		}
	})
	if !ok || v.LoadDirect() != 17 {
		t.Errorf("after commit value = %d, want 17", v.LoadDirect())
	}
}

func TestStatsCounting(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	tx.Run(func(tx *Txn) { tx.Store(v, 1) })
	tx.Run(func(tx *Txn) { tx.Abort(AbortExplicit) })
	starts, commits, aborts := tx.Stats()
	if starts != 2 || commits != 1 || aborts[AbortExplicit] != 1 {
		t.Errorf("stats = (%d, %d, %v)", starts, commits, aborts)
	}
	if tx.LastReason() != AbortExplicit {
		t.Errorf("LastReason = %v", tx.LastReason())
	}
}

// TestConcurrentCounter hammers one cell from many goroutines, each
// retrying its transaction until commit; the final value must equal the
// total number of commits (atomicity + no lost updates).
func TestConcurrentCounter(t *testing.T) {
	d := newTestDomain()
	v := d.NewVar(0)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := d.NewTxn(uint64(id) + 1)
			for i := 0; i < perWorker; i++ {
				for {
					ok, _ := tx.Run(func(tx *Txn) { tx.Add(v, 1) })
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := v.LoadDirect(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentTransfers runs the classic bank-transfer opacity stress:
// concurrent transactions move value between accounts; the total must be
// conserved, and no transaction may ever observe a broken invariant
// mid-flight (the observation itself is done transactionally).
func TestConcurrentTransfers(t *testing.T) {
	d := newTestDomain()
	const accounts = 16
	const initial = 1000
	vars := d.NewVars(accounts)
	for i := range vars {
		vars[i].StoreDirect(initial)
	}
	const workers, ops = 8, 3000
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := d.NewTxn(uint64(id) + 100)
			rng := uint64(id*2654435761 + 1)
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < ops; i++ {
				from := int(next() % accounts)
				to := int(next() % accounts)
				if from == to {
					continue
				}
				for {
					ok, _ := tx.Run(func(tx *Txn) {
						a := tx.Load(&vars[from])
						b := tx.Load(&vars[to])
						if a == 0 {
							return
						}
						tx.Store(&vars[from], a-1)
						tx.Store(&vars[to], b+1)
					})
					if ok {
						break
					}
				}
				// Observe the invariant transactionally; must always hold.
				for {
					ok, _ := tx.Run(func(tx *Txn) {
						var sum uint64
						for j := range vars {
							sum += tx.Load(&vars[j])
						}
						if sum != accounts*initial {
							select {
							case errs <- "invariant broken inside transaction":
							default:
							}
						}
					})
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	var sum uint64
	for i := range vars {
		sum += vars[i].LoadDirect()
	}
	if sum != accounts*initial {
		t.Errorf("total = %d, want %d", sum, accounts*initial)
	}
}

// TestMixedDirectAndTxn interleaves direct writers with transactions on a
// pair of cells that must stay equal; transactions copy a->b, the direct
// writer bumps a. Transactions must never commit a stale copy over a newer
// a (serializability against direct writes).
func TestMixedDirectAndTxn(t *testing.T) {
	d := newTestDomain()
	a := d.NewVar(0)
	b := d.NewVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a.StoreDirect(i)
		}
	}()
	tx := d.NewTxn(5)
	for i := 0; i < 5000; i++ {
		tx.Run(func(tx *Txn) {
			x := tx.Load(a)
			tx.Store(b, x)
		})
	}
	close(stop)
	wg.Wait()
	// After quiescence, one last copy must make them exactly equal.
	for {
		ok, _ := tx.Run(func(tx *Txn) { tx.Store(b, tx.Load(a)) })
		if ok {
			break
		}
	}
	if a.LoadDirect() != b.LoadDirect() {
		t.Errorf("a=%d b=%d after final copy", a.LoadDirect(), b.LoadDirect())
	}
}

func TestCrossDomainUsePanics(t *testing.T) {
	d1 := newTestDomain()
	d2 := newTestDomain()
	v2 := d2.NewVar(0)
	tx := d1.NewTxn(1)
	defer func() {
		if recover() == nil {
			t.Error("cross-domain Load did not panic")
		}
	}()
	tx.Run(func(tx *Txn) { _ = tx.Load(v2) })
}

func TestRunWhileActivePanics(t *testing.T) {
	d := newTestDomain()
	tx := d.NewTxn(1)
	defer func() {
		if recover() == nil {
			t.Error("nested Run did not panic")
		}
	}()
	tx.Run(func(tx *Txn) { tx.Run(func(*Txn) {}) })
}
