package tm

// Injector is the fault-injection hook interface the simulated-HTM
// substrate consults when one is installed on a Domain (see
// internal/faultinject for the scripted implementation). It exists so the
// test harness can *force* the failure schedules that natural scheduling
// produces only rarely — capacity cliffs, spurious-abort bursts, conflict
// storms, HTM-disable flips mid-run — deterministically and reproducibly.
//
// Injected aborts are always sound: an abort is a legal outcome of any
// best-effort hardware transaction at any point, so an injector can only
// force retries and fallbacks, never wrong results. That is what makes
// oracle cross-checking under injection meaningful (internal/oracle).
//
// The zero-cost contract mirrors Options.InvariantMode in internal/core:
// with no injector installed, each hook site costs one nil check.
// Implementations must be safe for concurrent use when the domain is
// shared between goroutines.
type Injector interface {
	// BeginTxn is consulted at transaction begin. A non-AbortNone return
	// aborts the attempt immediately with that reason — AbortDisabled
	// models an HTM-disable flip (the platform "losing" its HTM for a
	// window of the run).
	BeginTxn() AbortReason

	// OnAccess is consulted at every transactional Load and Store, before
	// the access executes. reads and writes are the current read- and
	// write-set sizes (distinct Vars), so capacity-cliff schedules can
	// fire once a transaction grows past a scripted threshold; write
	// reports whether the access is a Store; shard is the commit-clock
	// shard the accessed Var hashes onto, so schedules can be confined to
	// one shard (the conflict-storm isolation ablation in EXPERIMENTS.md).
	// A non-AbortNone return aborts the attempt with that reason.
	OnAccess(reads, writes int, write bool, shard int) AbortReason
}

// SetInjector installs (or, with nil, removes) the domain's fault
// injector. Install before the domain is shared: the field is read
// without synchronization on the transaction hot path, matching the
// "configure, then share" contract of the rest of the runtime options.
func (d *Domain) SetInjector(inj Injector) { d.inj = inj }

// Injector returns the installed fault injector, or nil.
func (d *Domain) Injector() Injector { return d.inj }
