// Package tm is a software simulation of best-effort hardware transactional
// memory (HTM), the substrate that Transactional Lock Elision (TLE) runs on
// in the ALE paper (Dice et al., SPAA 2014).
//
// The paper evaluates ALE on two machines with real best-effort HTM (Sun
// Rock and Intel Haswell) and one without (SPARC T2+). Go programs have no
// portable access to HTM, so this package reproduces the *observable
// contract* that the ALE runtime depends on:
//
//   - A transaction either commits atomically or aborts with a reason code
//     (conflict, capacity, spurious/implementation-induced, explicit).
//   - Transactions are opaque: a running transaction never observes a state
//     that is inconsistent with some serial order, even before it commits
//     (the simulator validates every load against a begin-time snapshot, so
//     user code never acts on torn data).
//   - Non-transactional ("direct") writes to the same cells conflict with,
//     and abort, concurrently running transactions. This is what makes lock
//     *subscription* work: the ALE engine reads the lock word inside the
//     transaction, so a lock acquisition by another thread aborts it.
//   - Best-effort-ness: a platform Profile injects read/write capacity
//     limits and a spurious abort probability, reproducing the
//     characteristic failure pressure of Rock (tight, flaky) versus
//     Haswell (roomy, mostly reliable) versus T2 (no HTM at all).
//
// Internally the simulator is a word-granularity TL2-style STM: every
// transactional cell (Var) carries a versioned lock word; transactions keep
// a redo log and validate their read set against a global version clock at
// every load (opacity) and at commit. Direct writes advance the same clock,
// so they serialize correctly against transactions.
//
// Aborts unwind through user code via an internal panic value that only
// Txn.Run recovers, mirroring how real HTM rolls back to the checkpoint at
// transaction begin; user code inside a transaction simply stops executing
// at the aborting access.
package tm

import "fmt"

// AbortReason classifies why a transaction aborted, mirroring the status
// word of real best-effort HTM closely enough for the ALE policies to make
// the same distinctions the paper's implementation makes.
type AbortReason uint8

const (
	// AbortNone means the transaction did not abort.
	AbortNone AbortReason = iota
	// AbortConflict: a read or write conflicted with a concurrent
	// transaction or a direct write.
	AbortConflict
	// AbortCapacity: the read or write set exceeded the platform profile's
	// capacity (real HTM: cache-geometry overflow).
	AbortCapacity
	// AbortSpurious: an implementation-induced failure with no stable cause
	// (real HTM: TLB misses, interrupts, branch mispredictions on Rock...).
	AbortSpurious
	// AbortExplicit: user code requested the abort (real HTM: xabort).
	AbortExplicit
	// AbortLockHeld: the ALE engine observed the subscribed lock held. The
	// engine issues this reason both when the lock is held at begin and as
	// its estimate for conflict aborts that coincide with a held lock; the
	// adaptive policy discounts these (see paper section 4).
	AbortLockHeld
	// AbortDisabled: the platform has no HTM (T2 profile); every attempt
	// fails immediately with this reason.
	AbortDisabled
	// AbortNesting: a critical section nested inside a hardware transaction
	// does not allow HTM mode, so the enclosing transaction must abort
	// (paper section 4.1).
	AbortNesting
	// AbortPanic: user code panicked (with a non-abort value) inside the
	// transaction body. The speculative state is rolled back exactly like
	// any other abort and the panic then propagates to Run's caller; the
	// bucket exists so the descriptor's stats invariant
	// starts == commits + Σaborts holds even across user panics.
	AbortPanic

	numAbortReasons = int(AbortPanic) + 1
)

// NumAbortReasons is the number of distinct abort reason codes, for sizing
// per-reason counter arrays.
const NumAbortReasons = numAbortReasons

var abortReasonNames = [...]string{
	AbortNone:     "none",
	AbortConflict: "conflict",
	AbortCapacity: "capacity",
	AbortSpurious: "spurious",
	AbortExplicit: "explicit",
	AbortLockHeld: "lock-held",
	AbortDisabled: "disabled",
	AbortNesting:  "nesting",
	AbortPanic:    "panic",
}

// String returns a short lower-case name for the reason.
func (r AbortReason) String() string {
	if int(r) < len(abortReasonNames) {
		return abortReasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// abortSignal is the private panic value used to unwind user code when a
// transaction aborts. Only Txn.Run recovers it; any other panic passes
// through untouched.
type abortSignal struct {
	reason AbortReason
}
