package tm

import (
	"math"
	"strings"
	"testing"
)

// scriptedInjector is a minimal deterministic Injector for the substrate
// tests: it forces the scripted reasons at the scripted hook counts.
type scriptedInjector struct {
	beginReason  AbortReason // forced at the beginAt-th BeginTxn (1-based)
	beginAt      int
	begins       int
	accessReason AbortReason // forced at the accessAt-th OnAccess (1-based)
	accessAt     int
	accesses     int
	capAt        int   // force AbortCapacity once reads+writes >= capAt (0 = off)
	shards       []int // shard argument of every OnAccess call, in order
}

func (s *scriptedInjector) BeginTxn() AbortReason {
	s.begins++
	if s.beginAt != 0 && s.begins == s.beginAt {
		return s.beginReason
	}
	return AbortNone
}

func (s *scriptedInjector) OnAccess(reads, writes int, write bool, shard int) AbortReason {
	s.accesses++
	s.shards = append(s.shards, shard)
	if s.capAt != 0 && reads+writes >= s.capAt {
		return AbortCapacity
	}
	if s.accessAt != 0 && s.accesses == s.accessAt {
		return s.accessReason
	}
	return AbortNone
}

func TestInjectorBeginTxn(t *testing.T) {
	d := NewDomain(testProfile())
	inj := &scriptedInjector{beginReason: AbortDisabled, beginAt: 2}
	d.SetInjector(inj)
	if d.Injector() != inj {
		t.Fatalf("Injector() did not return the installed injector")
	}
	v := d.NewVar(1)
	txn := d.NewTxn(1)
	body := func(tx *Txn) { tx.Load(v) }

	if ok, _ := txn.Run(body); !ok {
		t.Fatalf("attempt 1 should commit (injector fires at begin 2)")
	}
	ok, reason := txn.Run(body)
	if ok || reason != AbortDisabled {
		t.Fatalf("attempt 2 = (%v, %v), want forced AbortDisabled", ok, reason)
	}
	if ok, _ := txn.Run(body); !ok {
		t.Fatalf("attempt 3 should commit (injection window passed)")
	}
}

func TestInjectorOnAccess(t *testing.T) {
	d := NewDomain(testProfile())
	d.SetInjector(&scriptedInjector{accessReason: AbortConflict, accessAt: 3})
	vs := d.NewVars(4)
	txn := d.NewTxn(1)

	ok, reason := txn.Run(func(tx *Txn) {
		tx.Load(&vs[0])     // access 1
		tx.Store(&vs[1], 7) // access 2
		tx.Load(&vs[2])     // access 3: forced conflict
		t.Error("unreachable: the forced abort must unwind the body")
	})
	if ok || reason != AbortConflict {
		t.Fatalf("Run = (%v, %v), want forced AbortConflict", ok, reason)
	}
	// The transaction must be fully rolled back: the buffered store never
	// became visible and the descriptor is reusable.
	if got := vs[1].LoadDirect(); got != 0 {
		t.Fatalf("aborted store leaked: %d", got)
	}
	if ok, _ := txn.Run(func(tx *Txn) { tx.Load(&vs[0]) }); !ok {
		t.Fatalf("descriptor not reusable after injected abort")
	}
}

func TestInjectorCapacityCliff(t *testing.T) {
	d := NewDomain(testProfile())
	d.SetInjector(&scriptedInjector{capAt: 3})
	vs := d.NewVars(8)
	txn := d.NewTxn(1)

	// Under the cliff: commits.
	if ok, _ := txn.Run(func(tx *Txn) {
		tx.Load(&vs[0])
		tx.Load(&vs[1])
	}); !ok {
		t.Fatalf("2-access transaction should fit under the injected cliff")
	}
	// At the cliff: the 4th access sees reads+writes == 3.
	ok, reason := txn.Run(func(tx *Txn) {
		for i := range vs {
			tx.Load(&vs[i])
		}
	})
	if ok || reason != AbortCapacity {
		t.Fatalf("Run = (%v, %v), want injected AbortCapacity", ok, reason)
	}
}

func TestInjectorDisabledIsNoOp(t *testing.T) {
	d := NewDomain(testProfile())
	v := d.NewVar(0)
	txn := d.NewTxn(1)
	if ok, _ := txn.Run(func(tx *Txn) { tx.Store(v, 1) }); !ok {
		t.Fatalf("no-injector transaction should commit")
	}
	d.SetInjector(&scriptedInjector{})
	d.SetInjector(nil) // removable
	if ok, _ := txn.Run(func(tx *Txn) { tx.Store(v, 2) }); !ok {
		t.Fatalf("transaction after injector removal should commit")
	}
	if got := v.LoadDirect(); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
		want string // substring of the located error, "" = valid
	}{
		{"valid", func(p *Profile) {}, ""},
		{"negative read cap", func(p *Profile) { p.ReadCap = -1 }, "negative ReadCap -1"},
		{"negative write cap", func(p *Profile) { p.WriteCap = -7 }, "negative WriteCap -7"},
		{"negative spurious", func(p *Profile) { p.SpuriousProb = -0.25 }, "negative SpuriousProb"},
		{"nan spurious", func(p *Profile) { p.SpuriousProb = math.NaN() }, "SpuriousProb is NaN"},
		{"clamped spurious", func(p *Profile) { p.SpuriousProb = 1.5 }, ""},
		{"disabled zero caps", func(p *Profile) { p.Enabled = false; p.ReadCap = 0; p.WriteCap = 0 }, ""},
		{"auto shards", func(p *Profile) { p.Shards = 0 }, ""},
		{"one shard", func(p *Profile) { p.Shards = 1 }, ""},
		{"max shards", func(p *Profile) { p.Shards = MaxShards }, ""},
		{"negative shards", func(p *Profile) { p.Shards = -2 }, "negative Shards -2"},
		{"non-power-of-two shards", func(p *Profile) { p.Shards = 6 }, "Shards 6 is not a power of two"},
		{"oversized shards", func(p *Profile) { p.Shards = 128 }, "Shards 128 exceeds MaxShards 64"},
		// 96 is both oversized and non-power-of-two; the bound error wins
		// so the message names the actionable limit.
		{"oversized non-power-of-two", func(p *Profile) { p.Shards = 96 }, "exceeds MaxShards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testProfile()
			tc.mut(&p)
			err := p.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), `"test"`) {
				t.Fatalf("error %v does not locate the profile by name", err)
			}
		})
	}
}

func TestNewDomainRejectsInvalidProfile(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("NewDomain accepted a negative ReadCap")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "negative ReadCap") {
			t.Fatalf("panic value %v, want the located validation error", r)
		}
	}()
	NewDomain(Profile{Name: "bad", Enabled: true, ReadCap: -3, WriteCap: 8})
}
