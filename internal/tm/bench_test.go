package tm

import (
	"sync/atomic"
	"testing"
)

// Substrate microbenchmarks: the raw cost of the simulated-HTM primitives.
// The figure-level benchmarks at the repository root sit on top of these;
// knowing the substrate's own overhead helps read those numbers.

func benchDomain() *Domain {
	return NewDomain(Profile{Name: "bench", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16})
}

func BenchmarkLoadDirect(b *testing.B) {
	d := benchDomain()
	v := d.NewVar(7)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += v.LoadDirect()
	}
	_ = sink
}

func BenchmarkLoadConsistent(b *testing.B) {
	d := benchDomain()
	v := d.NewVar(7)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += v.LoadConsistent()
	}
	_ = sink
}

func BenchmarkStoreDirect(b *testing.B) {
	d := benchDomain()
	v := d.NewVar(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.StoreDirect(uint64(i))
	}
}

func BenchmarkTxnReadOnly(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run(map[int]string{1: "1var", 8: "8vars", 64: "64vars"}[size], func(b *testing.B) {
			d := benchDomain()
			vars := d.NewVars(size)
			tx := d.NewTxn(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx.Run(func(tx *Txn) {
					for j := range vars {
						_ = tx.Load(&vars[j])
					}
				})
			}
		})
	}
}

func BenchmarkTxnReadWrite(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run(map[int]string{1: "1var", 8: "8vars", 64: "64vars"}[size], func(b *testing.B) {
			d := benchDomain()
			vars := d.NewVars(size)
			tx := d.NewTxn(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx.Run(func(tx *Txn) {
					for j := range vars {
						tx.Store(&vars[j], tx.Load(&vars[j])+1)
					}
				})
			}
		})
	}
}

func BenchmarkTxnAborted(b *testing.B) {
	d := benchDomain()
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Run(func(tx *Txn) {
			tx.Store(v, 1)
			tx.Abort(AbortExplicit)
		})
	}
}

func BenchmarkTxnContended(b *testing.B) {
	d := benchDomain()
	v := d.NewVar(0)
	var seed atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		tx := d.NewTxn(seed.Add(1))
		for pb.Next() {
			for {
				ok, _ := tx.Run(func(tx *Txn) { tx.Add(v, 1) })
				if ok {
					break
				}
			}
		}
	})
}

// BenchmarkTxnDisjointParallel: read-write transactions over per-worker
// disjoint cells. Pre-extension/GV4 this is the worst case for the global
// commit clock: every commit CASes the same word even though the data
// never conflicts. With commitTick adoption the clock stops being a
// serialization point.
func BenchmarkTxnDisjointParallel(b *testing.B) {
	d := benchDomain()
	// Pad workers' cells apart so the benchmark measures clock contention,
	// not false sharing of the data cells themselves.
	const stride = 8
	vars := d.NewVars(64 * stride)
	var seed atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := seed.Add(1)
		v := &vars[(id%64)*stride]
		tx := d.NewTxn(id)
		for pb.Next() {
			for {
				ok, _ := tx.Run(func(tx *Txn) { tx.Add(v, 1) })
				if ok {
					break
				}
			}
		}
	})
}

// BenchmarkTxnExtension: every iteration forces one timestamp extension
// (an unrelated direct write between two loads), measuring the cost of
// the revalidate-and-advance path that replaces a false-conflict abort.
func BenchmarkTxnExtension(b *testing.B) {
	d := benchDomain()
	a := d.NewVar(0)
	v := d.NewVar(0)
	tx := d.NewTxn(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _ := tx.Run(func(tx *Txn) {
			_ = tx.Load(a)
			v.StoreDirect(uint64(i))
			_ = tx.Load(v)
		})
		if !ok {
			b.Fatal("extension benchmark txn aborted")
		}
	}
}
