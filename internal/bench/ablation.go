package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tm"
)

// Ablation identifies one library mechanism whose contribution DESIGN.md
// calls out for quantification.
type Ablation struct {
	Name  string
	Descr string
	// Set flips the mechanism in an option set (nil when the mechanism
	// lives in the platform profile instead).
	Set func(o *core.Options, enabled bool)
	// SetProfile, when non-nil, flips the mechanism in the platform's HTM
	// profile (substrate-level mechanisms like timestamp extension).
	SetProfile func(p *tm.Profile, enabled bool)
	// Platform / workload under which the mechanism matters.
	Platform  platform.Platform
	MutatePct int
	Stripes   int
	Variant   Variant
}

// Ablations returns the mechanism ablation suite.
func Ablations() []Ablation {
	all := func() Variant {
		return Variant{
			Name:       "Static-All-10:10",
			Policy:     func() core.Policy { return core.NewStatic(10, 10) },
			AllowHTM:   true,
			AllowSWOpt: true,
		}
	}
	swOnly := Variant{
		Name:       "Static-SL-10",
		Policy:     func() core.Policy { return core.NewStatic(0, 10) },
		AllowSWOpt: true,
	}
	return []Ablation{
		{
			Name: "grouping",
			Descr: "SNZI grouping (section 4.2): conflicting executions defer " +
				"while SWOpt retries are in flight. Matters most when SWOpt is " +
				"the only elision (no HTM) and writers are frequent.",
			Set:       func(o *core.Options, e bool) { o.Grouping = e },
			Platform:  platform.T2(),
			MutatePct: 20,
			Variant:   swOnly,
		},
		{
			Name: "lockheld-discount",
			Descr: "Lighter accounting of lock-acquisition-induced HTM aborts " +
				"(section 4). Matters when Lock-mode executions interleave with " +
				"HTM attempts.",
			Set:       func(o *core.Options, e bool) { o.LockHeldDiscount = e },
			Platform:  platform.Haswell(),
			MutatePct: 50,
			Variant:   all(),
		},
		{
			Name: "marker-elision",
			Descr: "COULD_SWOPT_BE_RUNNING marker-bump elision (section 3.3): " +
				"HTM executions skip conflict-marker bumps when no SWOpt runs, " +
				"removing marker conflicts between concurrent transactions.",
			Set:       func(o *core.Options, e bool) { o.MarkerElision = e },
			Platform:  platform.Haswell(),
			MutatePct: 50,
			Variant: Variant{ // HTM-only: every marker bump is pure overhead
				Name:     "Static-HL-10",
				Policy:   func() core.Policy { return core.NewStatic(10, 0) },
				AllowHTM: true,
			},
		},
		{
			Name: "obs",
			Descr: "Live observability layer (internal/obs): per-thread " +
				"counter shards mirroring execution outcomes, one uncontended " +
				"atomic add per execution. Quantifies the cost of leaving " +
				"metrics attached in production versus Options.Obs=nil.",
			Set: func(o *core.Options, e bool) {
				if e {
					o.Obs = obs.New()
				} else {
					o.Obs = nil
				}
			},
			Platform:  platform.Haswell(),
			MutatePct: 0, // read-only: the one-atomic-add hot path dominates
			Variant:   all(),
		},
		{
			Name: "timestamp-extension",
			Descr: "TL2 timestamp extension (DESIGN.md section 7): a load " +
				"observing a version past the begin-time snapshot revalidates " +
				"the read set and slides the snapshot forward instead of " +
				"aborting. Off reintroduces false-conflict aborts from " +
				"unrelated commits under mutation-heavy HTM workloads.",
			SetProfile: func(p *tm.Profile, e bool) { p.DisableExtension = !e },
			Platform:   platform.Haswell(),
			MutatePct:  50,
			Variant: Variant{
				Name:     "Static-HL-10",
				Policy:   func() core.Policy { return core.NewStatic(10, 0) },
				AllowHTM: true,
			},
		},
		{
			Name: "sampling",
			Descr: "~3% timing sampling (section 4.3) versus timing every " +
				"execution. Quantifies the instrumentation cost the sampling " +
				"design avoids.",
			Set:       func(o *core.Options, e bool) { o.SampleAllTimings = !e },
			Platform:  platform.Haswell(),
			MutatePct: 20,
			Variant:   all(),
		},
	}
}

// RunAblation produces a two-series figure (mechanism on vs off) over the
// thread sweep.
func RunAblation(a Ablation, threads []int, opsPerThread int, keyRange uint64) (Figure, error) {
	fig := Figure{
		Title:   "Ablation: " + a.Name,
		Descr:   a.Descr,
		Threads: threads,
	}
	for _, enabled := range []bool{true, false} {
		label := a.Name + "=on"
		if !enabled {
			label = a.Name + "=off"
		}
		s := Series{Label: label, Points: map[int]float64{}}
		for _, th := range threads {
			opts := baseOptions()
			if a.Set != nil {
				a.Set(&opts, enabled)
			}
			plat := a.Platform
			if a.SetProfile != nil {
				a.SetProfile(&plat.Profile, enabled)
			}
			res, _, err := RunHashMap(HashMapParams{
				Platform:     plat,
				Variant:      a.Variant,
				Threads:      th,
				OpsPerThread: opsPerThread,
				KeyRange:     keyRange,
				MutatePct:    a.MutatePct,
				Stripes:      a.Stripes,
				Opts:         &opts,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("ablation %s/%s/%d: %w", a.Name, label, th, err)
			}
			s.Points[th] = res.MopsPerS
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// MarkerStripingFigure ablates the extension the paper leaves as future
// work (per-bucket version numbers): single tblVer versus striped markers
// under a mutation-heavy SWOpt workload.
func MarkerStripingFigure(threads []int, opsPerThread int, keyRange uint64) (Figure, error) {
	fig := Figure{
		Title: "Extension: conflict-marker striping",
		Descr: "Single tblVer (the paper) vs striped markers (the paper's " +
			"suggested per-bucket refinement), SWOpt-only on T2, 20% mutation.",
		Threads: threads,
	}
	v := Variant{
		Name:       "Static-SL-10",
		Policy:     func() core.Policy { return core.NewStatic(0, 10) },
		AllowSWOpt: true,
	}
	for _, stripes := range []int{1, 16, 256} {
		s := Series{Label: fmt.Sprintf("stripes=%d", stripes), Points: map[int]float64{}}
		for _, th := range threads {
			res, _, err := RunHashMap(HashMapParams{
				Platform:     platform.T2(),
				Variant:      v,
				Threads:      th,
				OpsPerThread: opsPerThread,
				KeyRange:     keyRange,
				MutatePct:    20,
				Stripes:      stripes,
			})
			if err != nil {
				return Figure{}, err
			}
			s.Points[th] = res.MopsPerS
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
