package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hashmap"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

// HashMapParams describes one HashMap microbenchmark run (one point of
// Figures 2-4).
type HashMapParams struct {
	Platform     platform.Platform
	Variant      Variant
	Threads      int
	OpsPerThread int
	// KeyRange is the key universe; the map is prepopulated with half of
	// it, so lookups hit ~50%.
	KeyRange uint64
	// MutatePct is the percentage of operations that mutate (split evenly
	// between Insert and Remove); the rest are Gets. 0 is the paper's
	// read-only/nomutate regime.
	MutatePct int
	// Stripes overrides the conflict-marker striping (0 = the paper's
	// single tblVer).
	Stripes int
	// Opts overrides the runtime options (nil = DefaultOptions) for the
	// mechanism ablations.
	Opts *core.Options
	// FaultScript, when non-empty, installs a deterministic fault
	// injector (internal/faultinject) on both the substrate and the
	// engine for this run — the fault-ablation mode. Result.Faults
	// reports how often it fired.
	FaultScript faultinject.Script
}

// RunHashMap executes one configuration and returns its measured point.
// The returned runtime (nil for the Uninstrumented baseline) lets callers
// print the ALE statistics report afterwards.
func RunHashMap(p HashMapParams) (Result, *core.Runtime, error) {
	if p.Threads < 1 || p.OpsPerThread < 1 || p.KeyRange < 2 {
		return Result{}, nil, fmt.Errorf("bench: bad params %+v", p)
	}
	opts := baseOptions()
	if p.Opts != nil {
		opts = *p.Opts
	}
	dom := tm.NewDomain(p.Platform.Profile)
	var inj *faultinject.Injector
	if len(p.FaultScript) > 0 {
		inj = faultinject.New(p.FaultScript)
		if opts.Obs != nil {
			inj.SetObsShard(opts.Obs.NewShard())
		}
		dom.SetInjector(inj)
		opts.Faults = inj
	}
	rt := core.NewRuntimeOpts(dom, opts)
	stripes := p.Stripes
	if stripes < 1 {
		stripes = 1
	}
	capacity := int(p.KeyRange)*2 + 4096
	var pol core.Policy
	if p.Variant.NeedsALE() {
		pol = p.Variant.Policy()
	} else {
		pol = core.NewLockOnly() // lock object reused as the raw lock below
	}
	m := hashmap.New(rt, "tbl", hashmap.Config{
		Buckets:       int(p.KeyRange) / 4,
		Capacity:      capacity,
		MarkerStripes: stripes,
	}, pol)
	if p.Variant.NeedsALE() {
		m.Lock().SetModes(p.Variant.AllowHTM, p.Variant.AllowSWOpt)
	}

	// Prepopulate even keys so ~50% of uniform lookups hit.
	seed := m.NewHandle()
	for k := uint64(2); k <= p.KeyRange; k += 2 {
		if _, err := seed.Insert(k, k*1000); err != nil {
			return Result{}, nil, err
		}
	}

	var (
		wg      sync.WaitGroup
		hits    atomic.Uint64
		lookups atomic.Uint64
		fail    atomic.Pointer[error]
	)
	start := time.Now()
	for t := 0; t < p.Threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := m.NewHandle()
			rng := xrand.New(uint64(id)*7919 + 13)
			var localHits, localLookups uint64
			raw := m.Lock().Ops() // for the Uninstrumented baseline
			for i := 0; i < p.OpsPerThread; i++ {
				key := rng.Uint64n(p.KeyRange) + 1
				r := rng.Intn(100)
				var err error
				switch {
				case r < p.MutatePct/2: // Insert
					if p.Variant.NeedsALE() {
						_, err = h.Insert(key, key*1000)
					} else {
						raw.Acquire()
						_, err = h.InsertDirect(key, key*1000)
						raw.Release()
					}
				case r < p.MutatePct: // Remove
					if p.Variant.NeedsALE() {
						_, err = h.Remove(key)
					} else {
						raw.Acquire()
						h.RemoveDirect(key)
						raw.Release()
					}
				default: // Get
					localLookups++
					var ok bool
					if p.Variant.NeedsALE() {
						_, ok, err = h.Get(key)
					} else {
						raw.Acquire()
						_, ok = h.GetDirect(key)
						raw.Release()
					}
					if ok {
						localHits++
					}
				}
				if err != nil {
					fail.Store(&err)
					return
				}
			}
			hits.Add(localHits)
			lookups.Add(localLookups)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if ep := fail.Load(); ep != nil {
		return Result{}, nil, *ep
	}
	res := finish(uint64(p.Threads)*uint64(p.OpsPerThread), hits.Load(), lookups.Load(), elapsed)
	if inj != nil {
		res.Faults = inj.TotalFirings()
	}
	if !p.Variant.NeedsALE() {
		return res, nil, nil
	}
	lastRuntime.Store(rt)
	return res, rt, nil
}

// HashMapFigure sweeps thread counts x variants on one platform for one
// mutation mix — one of the paper's HashMap plots.
func HashMapFigure(title string, plat platform.Platform, threads []int,
	opsPerThread int, keyRange uint64, mutatePct int) (Figure, error) {
	fig := Figure{
		Title: title,
		Descr: fmt.Sprintf("platform=%s  keyRange=%d  mutate=%d%%  ops/thread=%d",
			plat.Profile.String(), keyRange, mutatePct, opsPerThread),
		Threads: threads,
	}
	for _, v := range HashMapVariants() {
		s := Series{Label: v.Name, Points: map[int]float64{}}
		for _, th := range threads {
			res, _, err := RunHashMap(HashMapParams{
				Platform:     plat,
				Variant:      v,
				Threads:      th,
				OpsPerThread: opsPerThread,
				KeyRange:     keyRange,
				MutatePct:    mutatePct,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("%s/%s/%d threads: %w", title, v.Name, th, err)
			}
			s.Points[th] = res.MopsPerS
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
