package bench

import (
	"sync/atomic"

	"repro/internal/core"
)

// baseOpts is the options template runners start from when a params struct
// carries no explicit Opts override. The CLI installs its observability
// and tracing flags here once, so every run of a sweep inherits them.
var baseOpts atomic.Pointer[core.Options]

// lastRuntime records the ALE runtime of the most recently completed run.
var lastRuntime atomic.Pointer[core.Runtime]

// SetBaseOptions installs opts as the template every subsequent run starts
// from (unless the run's params carry an explicit Opts override). Intended
// for process-wide wiring such as alebench's -metrics-addr and -trace
// flags; call it before starting sweeps.
func SetBaseOptions(opts core.Options) { baseOpts.Store(&opts) }

// baseOptions returns the current template (DefaultOptions when none was
// installed).
func baseOptions() core.Options {
	if p := baseOpts.Load(); p != nil {
		return *p
	}
	return core.DefaultOptions()
}

// LastRuntime returns the ALE runtime of the most recently completed
// RunHashMap/RunKyoto call (nil before any ALE run finishes, and unchanged
// by non-ALE baseline runs). The CLI uses it to dump the final run's trace
// and report after a sweep; it is only meaningful once the sweep's workers
// have quiesced.
func LastRuntime() *core.Runtime { return lastRuntime.Load() }
