// Package bench is the experiment harness: it reconstructs every figure
// and table of the paper's evaluation (section 5) as parameter sweeps over
// simulated platforms, policy variants, thread counts, and workload mixes,
// and renders the same series the paper plots.
//
// EXPERIMENTS.md records, per figure, the paper's qualitative claims and
// what this harness measures; DESIGN.md maps each experiment to the
// modules that implement it.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/kyoto"
	"repro/internal/platform"
)

// Variant is one curve in a figure: a policy configuration (or a non-ALE
// baseline) applied to every ALE lock in the benchmark.
type Variant struct {
	// Name follows the paper's legend convention (section 5):
	// Uninstrumented, Instrumented, Static-HL-k, Static-SL-k,
	// Static-All-X:Y, Adaptive-HL, Adaptive-SL, Adaptive-All,
	// trylockspin.
	Name string

	// Policy builds a fresh policy instance per lock. nil marks a non-ALE
	// baseline (Uninstrumented for the HashMap, trylockspin for Kyoto).
	Policy func() core.Policy

	// AllowHTM / AllowSWOpt are the per-lock mode master switches (the
	// HL / SL / All suffix).
	AllowHTM   bool
	AllowSWOpt bool
}

// NeedsALE reports whether the variant runs through the ALE engine.
func (v Variant) NeedsALE() bool { return v.Policy != nil }

// adaptiveCfg returns the adaptive configuration the sweeps use. Phase
// lengths are sized so learning settles within the first fraction of a
// sweep run yet exercises every stage.
func adaptiveCfg() core.AdaptiveConfig {
	return core.AdaptiveConfig{PhaseExecs: 500, InitialX: 20, XSlack: 2, BigY: 500}
}

// HashMapVariants returns the HashMap microbenchmark's curve set in the
// paper's legend order.
func HashMapVariants() []Variant {
	return []Variant{
		{Name: "Uninstrumented"},
		{Name: "Instrumented", Policy: func() core.Policy { return core.NewLockOnly() }},
		{Name: "Static-HL-1", Policy: func() core.Policy { return core.NewStatic(1, 0) }, AllowHTM: true},
		{Name: "Static-HL-10", Policy: func() core.Policy { return core.NewStatic(10, 0) }, AllowHTM: true},
		{Name: "Static-SL-10", Policy: func() core.Policy { return core.NewStatic(0, 10) }, AllowSWOpt: true},
		{Name: "Static-All-10:10", Policy: func() core.Policy { return core.NewStatic(10, 10) }, AllowHTM: true, AllowSWOpt: true},
		{Name: "Adaptive-HL", Policy: func() core.Policy { return core.NewAdaptiveCfg(adaptiveCfg()) }, AllowHTM: true},
		{Name: "Adaptive-SL", Policy: func() core.Policy { return core.NewAdaptiveCfg(adaptiveCfg()) }, AllowSWOpt: true},
		{Name: "Adaptive-All", Policy: func() core.Policy { return core.NewAdaptiveCfg(adaptiveCfg()) }, AllowHTM: true, AllowSWOpt: true},
	}
}

// KyotoVariants returns the wicked benchmark's curve set (paper Figure 5's
// legend, including the hand-tuned trylockspin comparator).
func KyotoVariants() []Variant {
	return []Variant{
		{Name: "Instrumented", Policy: func() core.Policy { return core.NewLockOnly() }},
		{Name: "trylockspin"},
		{Name: "Static-HL-10", Policy: func() core.Policy { return core.NewStatic(10, 0) }, AllowHTM: true},
		{Name: "Static-SL-10", Policy: func() core.Policy { return core.NewStatic(0, 10) }, AllowSWOpt: true},
		{Name: "Static-All-10:10", Policy: func() core.Policy { return core.NewStatic(10, 10) }, AllowHTM: true, AllowSWOpt: true},
		{Name: "Adaptive-SL", Policy: func() core.Policy { return core.NewAdaptiveCfg(adaptiveCfg()) }, AllowSWOpt: true},
		{Name: "Adaptive-All", Policy: func() core.Policy { return core.NewAdaptiveCfg(adaptiveCfg()) }, AllowHTM: true, AllowSWOpt: true},
	}
}

// kyotoFactory adapts a Variant to the Kyoto DB's per-lock policy factory,
// applying the mode switches through the policy eligibility (the lock
// switches themselves are set by the runner on the read lock; slot locks
// have no SWOpt paths so only the HTM switch matters there).
func kyotoFactory(v Variant) kyoto.PolicyFactory {
	return func(string) core.Policy { return v.Policy() }
}

// Result is one measured point.
type Result struct {
	Ops      uint64
	Elapsed  time.Duration
	HitRate  float64 // fraction of lookups that hit (where tracked)
	MopsPerS float64
	// Faults counts injected-fault firings (fault-ablation runs only).
	Faults uint64
}

func finish(ops uint64, hits, lookups uint64, elapsed time.Duration) Result {
	r := Result{Ops: ops, Elapsed: elapsed}
	if elapsed > 0 {
		r.MopsPerS = float64(ops) / elapsed.Seconds() / 1e6
	}
	if lookups > 0 {
		r.HitRate = float64(hits) / float64(lookups)
	}
	return r
}

// Series is one curve: throughput per thread count.
type Series struct {
	Label  string
	Points map[int]float64 // threads -> Mops/s
}

// Figure is a rendered experiment: a set of series over shared x values.
type Figure struct {
	Title   string
	Descr   string
	Threads []int
	Series  []Series
}

// Print renders the figure as an aligned table, one row per thread count,
// one column per variant — the textual equivalent of the paper's plots.
func (f Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", f.Title)
	if f.Descr != "" {
		fmt.Fprintf(w, "%s\n", f.Descr)
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	header := []string{"threads"}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	fmt.Fprintln(tw, strings.Join(header, "\t")+"\t")
	for _, th := range f.Threads {
		row := []string{fmt.Sprintf("%d", th)}
		for _, s := range f.Series {
			if v, ok := s.Points[th]; ok {
				row = append(row, fmt.Sprintf("%.3f", v))
			} else {
				row = append(row, "-")
			}
		}
		fmt.Fprintln(tw, strings.Join(row, "\t")+"\t")
	}
	tw.Flush()
	fmt.Fprintln(w, "(throughput, Mops/s; higher is better)")
}

// ClampThreads drops sweep points above the host's usable parallelism cap
// when cap > 0. The simulated T2 sweeps to 64 threads; on small hosts the
// extra points measure Go scheduler oversubscription rather than the
// algorithms, so the harness trims by default and offers -allthreads.
func ClampThreads(threads []int, cap int) []int {
	if cap <= 0 {
		return threads
	}
	out := threads[:0:0]
	for _, t := range threads {
		if t <= cap {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// PlatformByFigure maps the reconstructed figure numbers to platforms
// (DESIGN.md section 4): Fig 2 = Haswell, Fig 3 = Rock, Fig 4 = T2 (no
// HTM), Fig 5 = Kyoto wicked (run on Haswell and T2 in the paper; we use
// Haswell as the primary and T2 via -platform).
func PlatformByFigure(fig int) (platform.Platform, error) {
	switch fig {
	case 2:
		return platform.Haswell(), nil
	case 3:
		return platform.Rock(), nil
	case 4:
		return platform.T2(), nil
	case 5:
		return platform.Haswell(), nil
	}
	return platform.Platform{}, fmt.Errorf("bench: no platform mapping for figure %d", fig)
}
