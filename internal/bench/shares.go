package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kyoto"
	"repro/internal/platform"
)

// ModeShares aggregates, across every granule of every lock in rt, the
// fraction of successful critical-section executions that completed in
// each mode. The "elision rate" (HTM + SWOpt shares) is the
// mechanism-level quantity behind the paper's throughput curves: a
// critical section that completes without the lock is one that cannot
// convoy other threads. Unlike wall-clock throughput it is robust to the
// host's core count and to the simulated HTM's constant overhead, so the
// reproduction reports it alongside raw throughput (EXPERIMENTS.md
// explains how to read the two together).
func ModeShares(rt *core.Runtime) (htm, swopt, lock float64) {
	var h, s, l uint64
	for _, lk := range rt.Locks() {
		for _, g := range lk.Granules() {
			h += g.Successes(core.ModeHTM)
			s += g.Successes(core.ModeSWOpt)
			l += g.Successes(core.ModeLock)
		}
	}
	total := h + s + l
	if total == 0 {
		return 0, 0, 0
	}
	return float64(h) / float64(total), float64(s) / float64(total), float64(l) / float64(total)
}

// ElisionRate is the fraction of executions that avoided the lock.
func ElisionRate(rt *core.Runtime) float64 {
	h, s, _ := ModeShares(rt)
	return h + s
}

// HashMapElisionFigure sweeps the same grid as HashMapFigure but reports
// the elision rate (%) instead of throughput. Baselines without ALE have
// no elision by construction and are omitted.
func HashMapElisionFigure(title string, plat platform.Platform, threads []int,
	opsPerThread int, keyRange uint64, mutatePct int) (Figure, error) {
	fig := Figure{
		Title: title,
		Descr: fmt.Sprintf("elision rate, %% of executions completing without the lock; "+
			"platform=%s keyRange=%d mutate=%d%%", plat.Profile.String(), keyRange, mutatePct),
		Threads: threads,
	}
	for _, v := range HashMapVariants() {
		if !v.NeedsALE() || (!v.AllowHTM && !v.AllowSWOpt) {
			continue
		}
		s := Series{Label: v.Name, Points: map[int]float64{}}
		for _, th := range threads {
			_, rt, err := RunHashMap(HashMapParams{
				Platform:     plat,
				Variant:      v,
				Threads:      th,
				OpsPerThread: opsPerThread,
				KeyRange:     keyRange,
				MutatePct:    mutatePct,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("%s/%s/%d threads: %w", title, v.Name, th, err)
			}
			s.Points[th] = ElisionRate(rt) * 100
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// KyotoElisionFigure is the Figure 5 analogue of HashMapElisionFigure.
func KyotoElisionFigure(title string, plat platform.Platform, threads []int,
	opsPerThread int, w kyoto.Wicked) (Figure, error) {
	fig := Figure{
		Title: title,
		Descr: fmt.Sprintf("elision rate, %% of executions completing without a lock; "+
			"platform=%s wicked keyRange=%d nomutate=%v", plat.Profile.String(), w.KeyRange, w.NoMutate),
		Threads: threads,
	}
	for _, v := range KyotoVariants() {
		if !v.NeedsALE() || (!v.AllowHTM && !v.AllowSWOpt) {
			continue
		}
		s := Series{Label: v.Name, Points: map[int]float64{}}
		for _, th := range threads {
			_, rt, err := RunKyoto(KyotoParams{
				Platform:     plat,
				Variant:      v,
				Threads:      th,
				OpsPerThread: opsPerThread,
				Workload:     w,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("%s/%s/%d threads: %w", title, v.Name, th, err)
			}
			s.Points[th] = ElisionRate(rt) * 100
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
