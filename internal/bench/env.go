package bench

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// MicroEnv is the environment fingerprint stamped into every v2 BENCH
// report. Cross-run comparisons (internal/trend, alereport -compare)
// inspect it to annotate deltas measured across different hosts or
// toolchains — a faster number on a faster machine is not a faster
// program. GOMAXPROCS lives at the report's top level (a v1 holdover);
// everything else about the capture environment is here.
type MicroEnv struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUModel is the host CPU's self-reported model name where readable
	// (/proc/cpuinfo on linux); empty elsewhere.
	CPUModel string `json:"cpu_model,omitempty"`
	// Time is the capture time in RFC 3339 UTC.
	Time string `json:"time"`
	// GitRev is the repository's short HEAD revision at capture time,
	// empty when the binary runs outside a git checkout.
	GitRev string `json:"git_rev,omitempty"`
}

// CaptureEnv reads the current process's environment fingerprint. Best
// effort by design: fields that cannot be determined are left empty
// rather than failing the benchmark run.
func CaptureEnv() MicroEnv {
	return MicroEnv{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUModel:  cpuModel(),
		Time:      time.Now().UTC().Format(time.RFC3339),
		GitRev:    gitRev(),
	}
}

// cpuModel returns the first "model name" entry of /proc/cpuinfo, or ""
// where that file does not exist (non-linux) or has another layout.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// gitRev returns the short HEAD revision, or "" when git or the
// repository is unavailable.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
