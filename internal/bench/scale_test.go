package bench

import (
	"io"
	"strings"
	"testing"

	"repro/internal/tm"
)

// TestDisjointShardVarsPlacement: the rejection sampler actually lands
// Var i in shard i % NumShards, for both a real multi-shard domain and
// the degenerate single-shard ablation domain.
func TestDisjointShardVarsPlacement(t *testing.T) {
	for _, shards := range []int{1, 8} {
		p := microProfile()
		p.Shards = shards
		d := tm.NewDomain(p)
		vars := disjointShardVars(d, 16)
		for i, v := range vars {
			if got, want := v.Shard(), i%shards; got != want {
				t.Fatalf("shards=%d: vars[%d] in shard %d, want %d", shards, i, got, want)
			}
		}
	}
}

// TestScaleBenchesShape: the family enumerates (workers, variant) pairs
// in sweep order, sharded leg first.
func TestScaleBenchesShape(t *testing.T) {
	bs := scaleBenches([]int{1, 4}, 8)
	want := []string{
		"scale/disjoint-w1-sharded", "scale/disjoint-w1-1shard",
		"scale/disjoint-w4-sharded", "scale/disjoint-w4-1shard",
	}
	if len(bs) != len(want) {
		t.Fatalf("family has %d entries, want %d", len(bs), len(want))
	}
	for i, b := range bs {
		if b.name != want[i] {
			t.Errorf("entry %d = %q, want %q", i, b.name, want[i])
		}
		if b.elidable {
			t.Errorf("%s: substrate benchmark marked elidable", b.name)
		}
	}
}

// TestRunScaleReport runs a tiny sweep end to end: the report must be
// valid BENCH JSON (v2 schema, every entry measured, samples recorded)
// so alereport and CI can treat scale artifacts like micro reports.
func TestRunScaleReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	rep := RunScale(io.Discard, []int{1, 2}, 8, 1)
	if rep.Schema != MicroSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, MicroSchema)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("report has %d benchmarks, want 4", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if !strings.HasPrefix(b.Name, "scale/disjoint-") {
			t.Errorf("unexpected benchmark name %q", b.Name)
		}
		if b.NsPerOp <= 0 || len(b.Samples()) != 1 {
			t.Errorf("%s: ns/op %.1f with %d samples, want a measured single-sample point",
				b.Name, b.NsPerOp, len(b.Samples()))
		}
		if b.ElisionPct != nil {
			t.Errorf("%s: substrate benchmark reports an elision rate", b.Name)
		}
	}
}
