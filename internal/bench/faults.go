package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/platform"
)

// FaultRegime is one row of the fault-ablation table: a named fault
// script applied to every run in that row. The empty script is the
// organic baseline.
type FaultRegime struct {
	Name   string
	Script faultinject.Script
}

// FaultRegimes returns the ablation's regime set: the fault-free
// baseline, one periodic regime per fault class, and all classes
// combined. Periods are co-prime so the combined regime interleaves
// rather than synchronizes.
func FaultRegimes() []FaultRegime {
	mk := func(name, script string) FaultRegime {
		sc, err := faultinject.ParseScript(script)
		if err != nil {
			panic("bench: bad built-in fault script: " + err.Error())
		}
		return FaultRegime{Name: name, Script: sc}
	}
	return []FaultRegime{
		{Name: "baseline"},
		mk("spurious-burst", "spurious-burst/41"),
		mk("capacity-cliff", "capacity-cliff/53=24"),
		mk("conflict-storm", "conflict-storm/37"),
		mk("htm-disable", "htm-disable/101"),
		mk("validate-fail", "validate-fail/29"),
		mk("delay-end", "delay-end/43=8"),
		mk("lock-stretch", "lock-stretch/47=8"),
		mk("all-combined",
			"spurious-burst/41,capacity-cliff/53=24,conflict-storm/37,"+
				"htm-disable/101,validate-fail/29,delay-end/43=8,lock-stretch/47=8"),
	}
}

// FaultTable is the rendered fault ablation: one row per regime, one
// column pair (throughput, firings) per variant.
type FaultTable struct {
	Title    string
	Descr    string
	Variants []string
	Rows     []FaultRow
}

// FaultRow is one regime's measurements across the variant columns.
type FaultRow struct {
	Regime string
	Mops   []float64
	Faults []uint64
}

// Print renders the table; each cell is Mops/s with the injected-fault
// firing count in parentheses.
func (t FaultTable) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Descr != "" {
		fmt.Fprintf(w, "%s\n", t.Descr)
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	header := append([]string{"fault regime"}, t.Variants...)
	fmt.Fprintln(tw, strings.Join(header, "\t")+"\t")
	for _, r := range t.Rows {
		row := []string{r.Regime}
		for i := range r.Mops {
			row = append(row, fmt.Sprintf("%.3f (%d)", r.Mops[i], r.Faults[i]))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t")+"\t")
	}
	tw.Flush()
	fmt.Fprintln(w, "(throughput, Mops/s; parenthesized: injected-fault firings)")
}

// faultVariants returns the curves the fault ablation contrasts: an
// HTM-only static policy (maximally exposed to HTM-side faults), the
// full static mix, and the adaptive policy (which should reroute around
// whichever mechanism the faults degrade).
func faultVariants() []Variant {
	return []Variant{
		{Name: "Static-HL-10", Policy: func() core.Policy { return core.NewStatic(10, 0) }, AllowHTM: true},
		{Name: "Static-All-10:10", Policy: func() core.Policy { return core.NewStatic(10, 10) }, AllowHTM: true, AllowSWOpt: true},
		{Name: "Adaptive-All", Policy: func() core.Policy { return core.NewAdaptiveCfg(adaptiveCfg()) }, AllowHTM: true, AllowSWOpt: true},
	}
}

// FaultAblationTable sweeps fault regimes x policy variants on the
// HashMap workload at one thread count: the fault-ablation mode. The
// injected faults are sound (they only force aborts, retries, and
// stretched critical sections), so throughput deltas measure how each
// policy degrades — the adaptive policy's job is to keep the all-combined
// row closest to its baseline.
func FaultAblationTable(plat platform.Platform, threads, opsPerThread int,
	keyRange uint64, mutatePct int) (FaultTable, error) {
	variants := faultVariants()
	t := FaultTable{
		Title: "Fault ablation: HashMap throughput under injected fault regimes",
		Descr: fmt.Sprintf("platform=%s  threads=%d  keyRange=%d  mutate=%d%%  ops/thread=%d",
			plat.Profile.String(), threads, keyRange, mutatePct, opsPerThread),
	}
	for _, v := range variants {
		t.Variants = append(t.Variants, v.Name)
	}
	for _, reg := range FaultRegimes() {
		row := FaultRow{Regime: reg.Name}
		for _, v := range variants {
			res, _, err := RunHashMap(HashMapParams{
				Platform:     plat,
				Variant:      v,
				Threads:      threads,
				OpsPerThread: opsPerThread,
				KeyRange:     keyRange,
				MutatePct:    mutatePct,
				FaultScript:  reg.Script,
			})
			if err != nil {
				return FaultTable{}, fmt.Errorf("fault ablation %s/%s: %w", reg.Name, v.Name, err)
			}
			row.Mops = append(row.Mops, res.MopsPerS)
			row.Faults = append(row.Faults, res.Faults)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
