package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kyoto"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

// KyotoParams describes one wicked-benchmark run (one point of Figure 5).
type KyotoParams struct {
	Platform     platform.Platform
	Variant      Variant
	Threads      int
	OpsPerThread int
	Workload     kyoto.Wicked
	// InternalHTMOnly reproduces the paper's final section 5
	// configuration: both HTM and SWOpt for the external critical
	// section, only HTM for the internal ones. (The internal sections
	// have no SWOpt paths anyway; this switch exists to make the
	// configuration explicit and to allow disabling internal HTM.)
	InternalHTMOnly bool
	Opts            *core.Options
}

// RunKyoto executes one wicked configuration.
func RunKyoto(p KyotoParams) (Result, *core.Runtime, error) {
	if p.Threads < 1 || p.OpsPerThread < 1 {
		return Result{}, nil, fmt.Errorf("bench: bad params %+v", p)
	}
	opts := baseOptions()
	if p.Opts != nil {
		opts = *p.Opts
	}
	rt := core.NewRuntimeOpts(tm.NewDomain(p.Platform.Profile), opts)
	var pf kyoto.PolicyFactory
	if p.Variant.NeedsALE() {
		pf = kyotoFactory(p.Variant)
	} else {
		pf = kyoto.LockOnlyFactory() // locks reused raw by trylockspin
	}
	db := kyoto.New(rt, "db", kyoto.Config{
		Slots:        16,
		SlotBuckets:  int(p.Workload.KeyRange)/32 + 16,
		SlotCapacity: int(p.Workload.KeyRange) + 4096,
	}, pf)
	if p.Variant.NeedsALE() {
		db.ReadLock().SetModes(p.Variant.AllowHTM, p.Variant.AllowSWOpt)
	}

	seed := db.NewHandle()
	if err := p.Workload.Prepopulate(seed); err != nil {
		return Result{}, nil, err
	}

	var (
		wg      sync.WaitGroup
		hits    atomic.Uint64
		lookups atomic.Uint64
		fail    atomic.Pointer[error]
	)
	start := time.Now()
	for t := 0; t < p.Threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := db.NewHandle()
			rng := xrand.New(uint64(id)*104729 + 17)
			var localHits, localOps uint64
			for i := 0; i < p.OpsPerThread; i++ {
				if p.Variant.NeedsALE() {
					hit, err := p.Workload.Step(h, rng)
					if err != nil {
						fail.Store(&err)
						return
					}
					if hit {
						localHits++
					}
				} else {
					if p.Workload.StepTLS(h, rng) {
						localHits++
					}
				}
				localOps++
			}
			hits.Add(localHits)
			lookups.Add(localOps)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if ep := fail.Load(); ep != nil {
		return Result{}, nil, *ep
	}
	res := finish(uint64(p.Threads)*uint64(p.OpsPerThread), hits.Load(), lookups.Load(), elapsed)
	if !p.Variant.NeedsALE() {
		return res, nil, nil
	}
	lastRuntime.Store(rt)
	return res, rt, nil
}

// KyotoFigure sweeps thread counts x variants — the paper's Figure 5.
func KyotoFigure(title string, plat platform.Platform, threads []int,
	opsPerThread int, w kyoto.Wicked) (Figure, error) {
	fig := Figure{
		Title: title,
		Descr: fmt.Sprintf("platform=%s  wicked keyRange=%d nomutate=%v  ops/thread=%d",
			plat.Profile.String(), w.KeyRange, w.NoMutate, opsPerThread),
		Threads: threads,
	}
	for _, v := range KyotoVariants() {
		s := Series{Label: v.Name, Points: map[int]float64{}}
		for _, th := range threads {
			res, _, err := RunKyoto(KyotoParams{
				Platform:     plat,
				Variant:      v,
				Threads:      th,
				OpsPerThread: opsPerThread,
				Workload:     w,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("%s/%s/%d threads: %w", title, v.Name, th, err)
			}
			s.Points[th] = res.MopsPerS
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
