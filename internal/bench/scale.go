package bench

// Scale suite: disjoint-commit throughput versus worker count, the
// sharded commit clock against its -shards 1 single-clock ablation.
// This is the tentpole's headline measurement — with one GV4 clock,
// fully disjoint commits still serialize on the clock CAS; with
// per-shard clocks and per-shard Vars they share nothing at all.
//
// The family reuses the BENCH JSON schema (MicroReport), so cmd/alereport
// renders and -compares scale artifacts exactly like micro reports, and
// CI archives them the same way.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/tm"
)

// ScaleShardsDefault is the sharded configuration the scale family (and
// the micro suite's tm/commit-disjoint-sharded entry) measures against
// the single-clock ablation. Explicit rather than GOMAXPROCS-derived so
// the benchmark exercises real partitioning even on small hosts, where
// the auto shard count collapses to 1 and the ablation pair would
// measure the same thing twice.
const ScaleShardsDefault = 8

// disjointShardVars returns n Vars with the i'th placed in commit-clock
// shard i % NumShards, by rejection-sampling NewVar until the address
// hash lands where we want it. Every reject is retained alongside the
// results: dropping them would let escape analysis reuse one stack
// address for successive candidates, which can never change shard.
func disjointShardVars(d *tm.Domain, n int) []*tm.Var {
	out := make([]*tm.Var, n)
	var kept []*tm.Var
	for i := range out {
		want := i % d.NumShards()
		v := d.NewVar(0)
		for v.Shard() != want {
			kept = append(kept, v)
			v = d.NewVar(0)
		}
		out[i] = v
	}
	_ = kept
	return out
}

// disjointCommitBench measures fully disjoint read-write commits from
// `workers` goroutines splitting b.N between them, each repeatedly
// committing an Add against its own Var. Var i sits in shard
// i % NumShards, so with shards >= workers every worker owns a private
// commit clock and the commit path is contention-free; with shards = 1
// every commit still CASes the one global clock — the pre-sharding
// bottleneck this family quantifies.
func disjointCommitBench(shards, workers int) testing.BenchmarkResult {
	p := microProfile()
	p.Name = fmt.Sprintf("scale-%ds", shards)
	p.Shards = shards
	d := tm.NewDomain(p)
	vars := disjointShardVars(d, workers)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var wg sync.WaitGroup
		per, rem := b.N/workers, b.N%workers
		for w := 0; w < workers; w++ {
			iters := per
			if w < rem {
				iters++
			}
			wg.Add(1)
			go func(w, iters int) {
				defer wg.Done()
				v := vars[w]
				tx := d.NewTxn(uint64(w) + 1)
				for i := 0; i < iters; i++ {
					for {
						ok, _ := tx.Run(func(tx *tm.Txn) { tx.Add(v, 1) })
						if ok {
							break
						}
					}
				}
			}(w, iters)
		}
		wg.Wait()
	})
}

// scaleBenches builds the family: for each worker count, the sharded
// configuration and its single-clock ablation, named so a report reads
// as (workers, variant) pairs.
func scaleBenches(workers []int, shards int) []microBench {
	var bs []microBench
	for _, n := range workers {
		n := n
		bs = append(bs,
			microBench{name: fmt.Sprintf("scale/disjoint-w%d-sharded", n),
				run: func() (testing.BenchmarkResult, float64) {
					return disjointCommitBench(shards, n), 0
				}},
			microBench{name: fmt.Sprintf("scale/disjoint-w%d-1shard", n),
				run: func() (testing.BenchmarkResult, float64) {
					return disjointCommitBench(1, n), 0
				}},
		)
	}
	return bs
}

// RunScale runs the disjoint-commit scaling family at each worker
// count, count passes each (interleaved, like RunMicroCount), streaming
// the human-readable table to w and returning the machine-readable
// report in the BENCH JSON schema.
func RunScale(w io.Writer, workers []int, shards, count int) MicroReport {
	return runSuite(w, scaleBenches(workers, shards), count)
}
