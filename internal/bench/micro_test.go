package bench

import (
	"errors"
	"strings"
	"testing"
)

// The full suite is exercised by `alebench micro` and CI's bench job; unit
// tests pin the wire format and the suite's shape, which are cheap.

func pct(v float64) *float64 { return &v }

func TestMicroJSONRoundTrip(t *testing.T) {
	rep := MicroReport{
		Schema:     MicroSchema,
		GoMaxProcs: 4,
		Env:        &MicroEnv{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", Time: "2026-08-09T00:00:00Z", GitRev: "abc1234"},
		Benchmarks: []MicroResult{
			{Name: "tm/load-8", NsPerOp: 96.8, AllocsPerOp: 0, OpsPerSec: 1.0e7,
				SamplesNS: []float64{96.8, 97.1, 96.2}},
			{Name: "core/execute-htm", NsPerOp: 230.9, AllocsPerOp: 0, OpsPerSec: 4.3e6,
				SamplesNS: []float64{230.9, 231.4, 229.8}, ElisionPct: pct(100)},
		},
	}
	var b strings.Builder
	if err := WriteMicroJSON(&b, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMicro([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != MicroSchema || got.GoMaxProcs != 4 || len(got.Benchmarks) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Env == nil || got.Env.GoVersion != "go1.24.0" || got.Env.GitRev != "abc1234" {
		t.Errorf("env fingerprint lost: %+v", got.Env)
	}
	hb := got.Benchmarks[1]
	if hb.Name != "core/execute-htm" || hb.ElisionPct == nil || *hb.ElisionPct != 100 {
		t.Errorf("benchmark entry mismatch: %+v", hb)
	}
	if len(hb.SamplesNS) != 3 || hb.SamplesNS[1] != 231.4 {
		t.Errorf("samples lost in round trip: %v", hb.SamplesNS)
	}
	// The substrate entry carries no elision field at all.
	if got.Benchmarks[0].ElisionPct != nil {
		t.Errorf("tm entry grew an elision_pct: %+v", got.Benchmarks[0])
	}
	if strings.Contains(b.String(), `"name": "tm/load-8"`) &&
		strings.Contains(strings.Split(b.String(), `"core/execute-htm"`)[0], "elision_pct") {
		t.Errorf("wire format carries elision_pct for the substrate entry:\n%s", b.String())
	}
}

// TestParseMicroV1: the original single-sample schema still parses —
// including its explicit elision_pct: 0 on substrate entries — and
// Samples() exposes the collapsed point as a one-element series.
func TestParseMicroV1(t *testing.T) {
	v1 := `{
		"schema": "alebench-microbench/v1",
		"go_max_procs": 2,
		"benchmarks": [
			{"name": "tm/load-8", "ns_per_op": 83.1, "allocs_per_op": 0, "ops_per_sec": 12034897, "elision_pct": 0},
			{"name": "core/execute-htm", "ns_per_op": 188.0, "allocs_per_op": 0, "ops_per_sec": 5320328, "elision_pct": 100}
		]
	}`
	rep, err := ParseMicro([]byte(v1))
	if err != nil {
		t.Fatalf("v1 report rejected: %v", err)
	}
	if rep.Env != nil {
		t.Errorf("v1 report grew an env fingerprint: %+v", rep.Env)
	}
	b := rep.Benchmarks[0]
	if b.ElisionPct == nil || *b.ElisionPct != 0 {
		t.Errorf("explicit v1 elision_pct: 0 not preserved: %+v", b)
	}
	if s := b.Samples(); len(s) != 1 || s[0] != 83.1 {
		t.Errorf("v1 Samples() = %v, want the collapsed point", s)
	}
}

func TestParseMicroRejectsOtherJSON(t *testing.T) {
	// An obs snapshot (or any JSON object without the schema marker) must
	// be rejected — with ErrNotMicroSchema, so alereport's format probe
	// falls through correctly.
	for _, in := range []string{
		`{"execs": 12, "elision_rate": 0.5}`,
		`{"schema": "something-else/v2", "benchmarks": []}`,
		`not json at all`,
	} {
		_, err := ParseMicro([]byte(in))
		if err == nil {
			t.Errorf("ParseMicro accepted %q", in)
			continue
		}
		if !errors.Is(err, ErrNotMicroSchema) {
			t.Errorf("ParseMicro(%q) error is not ErrNotMicroSchema: %v", in, err)
		}
	}
}

// TestParseMicroRejectsDuplicateNames: duplicate benchmark names would
// silently last-win in tables and comparisons; the parser refuses them
// with both positions named. The error is NOT ErrNotMicroSchema — the
// input is a BENCH report, just an invalid one — so probing callers
// surface it instead of falling through to the next format.
func TestParseMicroRejectsDuplicateNames(t *testing.T) {
	in := `{
		"schema": "alebench-microbench/v2",
		"benchmarks": [
			{"name": "tm/load-8", "ns_per_op": 1},
			{"name": "core/execute-htm", "ns_per_op": 2},
			{"name": "tm/load-8", "ns_per_op": 3}
		]
	}`
	_, err := ParseMicro([]byte(in))
	if err == nil {
		t.Fatal("duplicate benchmark names accepted")
	}
	if errors.Is(err, ErrNotMicroSchema) {
		t.Errorf("duplicate-name error must not read as schema mismatch: %v", err)
	}
	for _, want := range []string{"benchmarks[2]", "benchmarks[0]", "tm/load-8"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("duplicate-name error not located (missing %q): %v", want, err)
		}
	}
}

func TestMicroBenchNamesCoverHotPaths(t *testing.T) {
	names := strings.Join(MicroBenchNames(), " ")
	for _, want := range []string{
		"tm/load", "tm/commit-rw", "tm/commit-disjoint-parallel",
		"tm/commit-disjoint-sharded", "tm/commit-disjoint-1shard", "tm/extension",
		"core/execute-htm", "core/execute-swopt", "core/execute-lock",
		"core/granule-hit", "core/granule-miss",
	} {
		if !strings.Contains(names, want) {
			t.Errorf("suite is missing %q (have: %s)", want, names)
		}
	}
}

// TestMicroElidableEntries: exactly the engine Execute benchmarks report
// an elision rate; substrate and granule-lookup entries must omit it
// (the satellite fix for the misleading elision_pct: 0 rows).
func TestMicroElidableEntries(t *testing.T) {
	for _, mb := range microBenches() {
		wantElidable := strings.HasPrefix(mb.name, "core/execute-")
		if mb.elidable != wantElidable {
			t.Errorf("%s: elidable = %v, want %v", mb.name, mb.elidable, wantElidable)
		}
	}
}

func TestCaptureEnv(t *testing.T) {
	env := CaptureEnv()
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" || env.Time == "" {
		t.Errorf("fingerprint has empty required fields: %+v", env)
	}
	// CPUModel and GitRev are best effort (may be empty off-linux or
	// outside a checkout); no assertion beyond not panicking.
}
