package bench

import (
	"strings"
	"testing"
)

// The full suite is exercised by `alebench micro` and CI's bench job; unit
// tests pin the wire format and the suite's shape, which are cheap.

func TestMicroJSONRoundTrip(t *testing.T) {
	rep := MicroReport{
		Schema:     MicroSchema,
		GoMaxProcs: 4,
		Benchmarks: []MicroResult{
			{Name: "tm/load-8", NsPerOp: 96.8, AllocsPerOp: 0, OpsPerSec: 1.0e7, ElisionPct: 0},
			{Name: "core/execute-htm", NsPerOp: 230.9, AllocsPerOp: 0, OpsPerSec: 4.3e6, ElisionPct: 100},
		},
	}
	var b strings.Builder
	if err := WriteMicroJSON(&b, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMicro([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != MicroSchema || got.GoMaxProcs != 4 || len(got.Benchmarks) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Benchmarks[1].Name != "core/execute-htm" || got.Benchmarks[1].ElisionPct != 100 {
		t.Errorf("benchmark entry mismatch: %+v", got.Benchmarks[1])
	}
}

func TestParseMicroRejectsOtherJSON(t *testing.T) {
	// An obs snapshot (or any JSON object without the schema marker) must
	// be rejected so alereport's format probe falls through correctly.
	for _, in := range []string{
		`{"execs": 12, "elision_rate": 0.5}`,
		`{"schema": "something-else/v2", "benchmarks": []}`,
		`not json at all`,
	} {
		if _, err := ParseMicro([]byte(in)); err == nil {
			t.Errorf("ParseMicro accepted %q", in)
		}
	}
}

func TestMicroBenchNamesCoverHotPaths(t *testing.T) {
	names := strings.Join(MicroBenchNames(), " ")
	for _, want := range []string{
		"tm/load", "tm/commit-rw", "tm/commit-disjoint-parallel", "tm/extension",
		"core/execute-htm", "core/execute-swopt", "core/execute-lock",
		"core/granule-hit", "core/granule-miss",
	} {
		if !strings.Contains(names, want) {
			t.Errorf("suite is missing %q (have: %s)", want, names)
		}
	}
}
