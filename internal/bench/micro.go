package bench

// Microbenchmark suite: the per-operation cost of the hot paths the
// figure-level sweeps sit on top of — substrate transactions (load,
// commit, the timestamp-extension path, the GV4 commit clock under
// disjoint parallelism) and the engine's Execute in each mode, plus
// granule resolution on cache hit versus forced eviction.
//
// The suite runs through testing.Benchmark so the same bodies work from
// `go test -bench` (internal/tm and internal/core keep their own copies as
// _test benchmarks) and from the alebench binary (`alebench micro`), which
// additionally emits the machine-readable BENCH JSON consumed by
// cmd/alereport and CI.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/tm"
)

// MicroSchema identifies the BENCH JSON wire format.
const MicroSchema = "alebench-microbench/v1"

// MicroResult is one benchmark's measured point.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// ElisionPct is the realized elision rate of the engine benchmarks
	// (successful executions completing without the lock); substrate and
	// granule-lookup benchmarks have no lock to elide and report 0.
	ElisionPct float64 `json:"elision_pct"`
}

// MicroReport is the whole suite's output — the BENCH_<n>.json schema.
type MicroReport struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"go_max_procs"`
	Benchmarks []MicroResult `json:"benchmarks"`
}

// WriteMicroJSON emits the report in the stable BENCH JSON format.
func WriteMicroJSON(w io.Writer, r MicroReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseMicro decodes BENCH JSON, rejecting input whose schema field does
// not match (so callers can probe a file before falling back to other
// formats).
func ParseMicro(data []byte) (MicroReport, error) {
	var r MicroReport
	if err := json.Unmarshal(data, &r); err != nil {
		return MicroReport{}, err
	}
	if r.Schema != MicroSchema {
		return MicroReport{}, fmt.Errorf("bench: schema %q is not %q", r.Schema, MicroSchema)
	}
	return r, nil
}

// microProfile is the deterministic HTM envelope the suite measures under:
// capacity far above every working set and no spurious aborts, so every
// benchmark exercises exactly the path its name says.
func microProfile() tm.Profile {
	return tm.Profile{Name: "microbench", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

// microPair mirrors the engine's canonical SWOpt-capable fixture (two
// cells kept equal; readers validate against a conflict marker, writers
// bump it) built through the public API only.
type microPair struct {
	rt              *core.Runtime
	c               *obs.Collector
	lock            *core.Lock
	readCS, writeCS *core.CS
}

func newMicroPair(policy core.Policy, timing bool) *microPair {
	opts := core.DefaultOptions()
	c := obs.New()
	opts.Obs = c
	opts.Timing = timing
	rt := core.NewRuntimeOpts(tm.NewDomain(microProfile()), opts)
	d := rt.Domain()
	a, b := d.NewVar(0), d.NewVar(0)
	p := &microPair{rt: rt, c: c}
	p.lock = rt.NewLock("microPair", locks.NewTATAS(d), policy)
	marker := p.lock.NewMarker()
	p.readCS = &core.CS{
		Scope:    core.NewScope("micro.Read"),
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			if ec.InSWOpt() {
				v := marker.ReadStable()
				_ = ec.Load(a)
				if !marker.Validate(v) {
					return ec.SWOptFail()
				}
				_ = ec.Load(b)
				if !marker.Validate(v) {
					return ec.SWOptFail()
				}
				return nil
			}
			_ = ec.Load(a)
			_ = ec.Load(b)
			return nil
		},
	}
	p.writeCS = &core.CS{
		Scope:       core.NewScope("micro.Write"),
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			n := ec.Load(a) + 1
			marker.BeginConflicting(ec)
			ec.Store(a, n)
			ec.Store(b, n)
			marker.EndConflicting(ec)
			return nil
		},
	}
	return p
}

// elisionPct reads the realized elision rate off the fixture's collector.
func (p *microPair) elisionPct() float64 { return 100 * p.c.Snapshot().ElisionRate() }

// executeBench measures the steady-state Execute cost of one CS under one
// policy, returning the realized elision rate alongside.
func executeBench(policy func() core.Policy, read bool) (testing.BenchmarkResult, float64) {
	return executeBenchTiming(policy, read, false)
}

// executeBenchTiming is executeBench with the timing layer optionally on;
// the -timing suite entries exist so the histogram/attribution overhead is
// a standing number in the BENCH report rather than folklore.
func executeBenchTiming(policy func() core.Policy, read, timing bool) (testing.BenchmarkResult, float64) {
	p := newMicroPair(policy(), timing)
	thr := p.rt.NewThread()
	cs := p.writeCS
	if read {
		cs = p.readCS
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.lock.Execute(thr, cs); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, p.elisionPct()
}

// granuleBench measures Execute of a trivial body under LockOnly with the
// per-thread granule cache either always hitting (one hot scope) or
// churning: cycling through 4x more contexts than the cache holds, so
// most resolutions evict and fall through to the shared table. The
// difference between the two isolates granule-resolution cost.
func granuleBench(scopes int) testing.BenchmarkResult {
	rt := core.NewRuntime(tm.NewDomain(microProfile()))
	l := rt.NewLock("granule", locks.NewTATAS(rt.Domain()), core.NewLockOnly())
	thr := rt.NewThread()
	css := make([]*core.CS, scopes)
	for i := range css {
		css[i] = &core.CS{Scope: core.NewScope("g"), Body: func(*core.ExecCtx) error { return nil }}
	}
	// Warm: register every granule so the measured loop never allocates.
	for _, cs := range css {
		if err := l.Execute(thr, cs); err != nil {
			panic(err)
		}
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := l.Execute(thr, css[i%len(css)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// granuleChurnScopes is 4x the engine's per-thread cache size (64 slots),
// kept as a literal so bench does not need access to core internals.
const granuleChurnScopes = 256

// microBenches is the suite in display order.
func microBenches() []struct {
	name string
	run  func() (testing.BenchmarkResult, float64)
} {
	return []struct {
		name string
		run  func() (testing.BenchmarkResult, float64)
	}{
		{"tm/load-8", func() (testing.BenchmarkResult, float64) {
			d := tm.NewDomain(microProfile())
			vars := d.NewVars(8)
			tx := d.NewTxn(1)
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tx.Run(func(tx *tm.Txn) {
						for j := range vars {
							_ = tx.Load(&vars[j])
						}
					})
				}
			}), 0
		}},
		{"tm/commit-rw-8", func() (testing.BenchmarkResult, float64) {
			d := tm.NewDomain(microProfile())
			vars := d.NewVars(8)
			tx := d.NewTxn(1)
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tx.Run(func(tx *tm.Txn) {
						for j := range vars {
							tx.Store(&vars[j], tx.Load(&vars[j])+1)
						}
					})
				}
			}), 0
		}},
		{"tm/commit-disjoint-parallel", func() (testing.BenchmarkResult, float64) {
			// Disjoint read-write commits from every P: the GV4 commit
			// clock's pass-on-CAS-failure case. Cells are padded apart so
			// only the clock is shared.
			d := tm.NewDomain(microProfile())
			const stride = 8
			vars := d.NewVars(64 * stride)
			var seed atomic.Uint64
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					id := seed.Add(1)
					v := &vars[(id%64)*stride]
					tx := d.NewTxn(id)
					for pb.Next() {
						for {
							ok, _ := tx.Run(func(tx *tm.Txn) { tx.Add(v, 1) })
							if ok {
								break
							}
						}
					}
				})
			}), 0
		}},
		{"tm/extension", func() (testing.BenchmarkResult, float64) {
			// Every iteration forces one timestamp extension: the
			// revalidate-and-advance path that replaces a false-conflict
			// abort.
			d := tm.NewDomain(microProfile())
			a := d.NewVar(0)
			v := d.NewVar(0)
			tx := d.NewTxn(1)
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ok, _ := tx.Run(func(tx *tm.Txn) {
						_ = tx.Load(a)
						v.StoreDirect(uint64(i))
						_ = tx.Load(v)
					})
					if !ok {
						b.Fatal("extension benchmark txn aborted")
					}
				}
			}), 0
		}},
		{"core/execute-htm", func() (testing.BenchmarkResult, float64) {
			return executeBench(func() core.Policy { return core.NewStatic(10, 0) }, false)
		}},
		{"core/execute-swopt", func() (testing.BenchmarkResult, float64) {
			return executeBench(func() core.Policy { return core.NewStatic(0, 10) }, true)
		}},
		{"core/execute-lock", func() (testing.BenchmarkResult, float64) {
			return executeBench(func() core.Policy { return core.NewLockOnly() }, false)
		}},
		{"core/execute-htm-timing", func() (testing.BenchmarkResult, float64) {
			return executeBenchTiming(func() core.Policy { return core.NewStatic(10, 0) }, false, true)
		}},
		{"core/execute-swopt-timing", func() (testing.BenchmarkResult, float64) {
			return executeBenchTiming(func() core.Policy { return core.NewStatic(0, 10) }, true, true)
		}},
		{"core/execute-lock-timing", func() (testing.BenchmarkResult, float64) {
			return executeBenchTiming(func() core.Policy { return core.NewLockOnly() }, false, true)
		}},
		{"core/granule-hit", func() (testing.BenchmarkResult, float64) {
			return granuleBench(1), 0
		}},
		{"core/granule-miss", func() (testing.BenchmarkResult, float64) {
			return granuleBench(granuleChurnScopes), 0
		}},
	}
}

// MicroBenchNames lists the suite in run order.
func MicroBenchNames() []string {
	bs := microBenches()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.name
	}
	return names
}

// RunMicro runs the whole suite, streaming a human-readable line per
// benchmark to w as results land (fixed-width columns, so partial output
// stays aligned), and returns the machine-readable report.
func RunMicro(w io.Writer) MicroReport {
	rep := MicroReport{Schema: MicroSchema, GoMaxProcs: runtime.GOMAXPROCS(0)}
	fmt.Fprintf(w, "%-28s %10s %10s %12s %9s\n", "benchmark", "ns/op", "allocs/op", "ops/s", "elision%")
	for _, mb := range microBenches() {
		r, elision := mb.run()
		res := MicroResult{
			Name:        mb.name,
			AllocsPerOp: r.AllocsPerOp(),
			ElisionPct:  elision,
		}
		if r.N > 0 {
			res.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		}
		if r.T > 0 {
			res.OpsPerSec = float64(r.N) / r.T.Seconds()
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(w, "%-28s %10.1f %10d %12.0f %9.1f\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.OpsPerSec, res.ElisionPct)
	}
	return rep
}
