package bench

// Microbenchmark suite: the per-operation cost of the hot paths the
// figure-level sweeps sit on top of — substrate transactions (load,
// commit, the timestamp-extension path, the GV4 commit clock under
// disjoint parallelism) and the engine's Execute in each mode, plus
// granule resolution on cache hit versus forced eviction.
//
// The suite runs through testing.Benchmark so the same bodies work from
// `go test -bench` (internal/tm and internal/core keep their own copies as
// _test benchmarks) and from the alebench binary (`alebench micro`), which
// additionally emits the machine-readable BENCH JSON consumed by
// cmd/alereport and CI.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/tm"
	"repro/internal/trend"
)

// MicroSchema identifies the current BENCH JSON wire format: repeated
// per-benchmark samples plus the environment fingerprint, so cross-run
// comparisons can model noise and refuse to read a cross-host delta as
// a code change.
const MicroSchema = "alebench-microbench/v2"

// MicroSchemaV1 is the original single-sample format. Still parsed:
// a v1 benchmark becomes a one-sample series, which the trend layer
// compares under a deliberately wide default noise bound.
const MicroSchemaV1 = "alebench-microbench/v1"

// ErrNotMicroSchema marks input that is not a BENCH microbench report at
// all (wrong schema marker, or not JSON). Callers probing a file before
// trying other formats branch on this with errors.Is; any other ParseMicro
// error means the input *is* a BENCH report, just an invalid one, and must
// surface rather than fall through to the next parser.
var ErrNotMicroSchema = errors.New("not an alebench-microbench report")

// MicroResult is one benchmark's measured point.
type MicroResult struct {
	Name string `json:"name"`
	// NsPerOp is the median of SamplesNS (v2) or the single collapsed
	// measurement (v1).
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// SamplesNS holds every repeated ns/op sample (alebench micro
	// -count N records N). v1 files omit it; readers should fall back to
	// NsPerOp as a single sample.
	SamplesNS []float64 `json:"samples_ns_per_op,omitempty"`
	// ElisionPct is the realized elision rate of the engine benchmarks
	// (successful executions completing without the lock). Substrate and
	// granule-lookup benchmarks have no lock to elide, so the field is
	// absent there rather than a misleading 0; v1 files carrying an
	// explicit 0 still parse.
	ElisionPct *float64 `json:"elision_pct,omitempty"`
}

// MicroReport is the whole suite's output — the BENCH_<n>.json schema.
type MicroReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"go_max_procs"`
	// Env is the v2 environment fingerprint; nil in v1 files.
	Env        *MicroEnv     `json:"env,omitempty"`
	Benchmarks []MicroResult `json:"benchmarks"`
}

// WriteMicroJSON emits the report in the stable BENCH JSON format.
func WriteMicroJSON(w io.Writer, r MicroReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseMicro decodes BENCH JSON, v1 or v2. Input without the schema
// marker fails with an error wrapping ErrNotMicroSchema (so callers can
// probe before falling back to other formats); a recognized report with
// duplicate benchmark names fails with a located error instead of
// letting the last entry silently win in tables and comparisons.
func ParseMicro(data []byte) (MicroReport, error) {
	var r MicroReport
	if err := json.Unmarshal(data, &r); err != nil {
		return MicroReport{}, fmt.Errorf("%w: %v", ErrNotMicroSchema, err)
	}
	switch r.Schema {
	case MicroSchema, MicroSchemaV1:
	default:
		return MicroReport{}, fmt.Errorf("%w: schema %q is neither %q nor %q",
			ErrNotMicroSchema, r.Schema, MicroSchema, MicroSchemaV1)
	}
	seen := make(map[string]int, len(r.Benchmarks))
	for i, b := range r.Benchmarks {
		if j, dup := seen[b.Name]; dup {
			return MicroReport{}, fmt.Errorf(
				"bench: benchmarks[%d] duplicates name %q of benchmarks[%d]", i, b.Name, j)
		}
		seen[b.Name] = i
	}
	return r, nil
}

// Samples returns the benchmark's ns/op sample series: the recorded v2
// samples, or the collapsed v1 point as a one-element series.
func (b MicroResult) Samples() []float64 {
	if len(b.SamplesNS) > 0 {
		return b.SamplesNS
	}
	return []float64{b.NsPerOp}
}

// microProfile is the deterministic HTM envelope the suite measures under:
// capacity far above every working set and no spurious aborts, so every
// benchmark exercises exactly the path its name says.
func microProfile() tm.Profile {
	return tm.Profile{Name: "microbench", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

// microPair mirrors the engine's canonical SWOpt-capable fixture (two
// cells kept equal; readers validate against a conflict marker, writers
// bump it) built through the public API only.
type microPair struct {
	rt              *core.Runtime
	c               *obs.Collector
	lock            *core.Lock
	readCS, writeCS *core.CS
}

func newMicroPair(policy core.Policy, timing bool) *microPair {
	opts := core.DefaultOptions()
	c := obs.New()
	opts.Obs = c
	opts.Timing = timing
	rt := core.NewRuntimeOpts(tm.NewDomain(microProfile()), opts)
	d := rt.Domain()
	a, b := d.NewVar(0), d.NewVar(0)
	p := &microPair{rt: rt, c: c}
	p.lock = rt.NewLock("microPair", locks.NewTATAS(d), policy)
	marker := p.lock.NewMarker()
	p.readCS = &core.CS{
		Scope:    core.NewScope("micro.Read"),
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			if ec.InSWOpt() {
				v := marker.ReadStable()
				_ = ec.Load(a)
				if !marker.Validate(v) {
					return ec.SWOptFail()
				}
				_ = ec.Load(b)
				if !marker.Validate(v) {
					return ec.SWOptFail()
				}
				return nil
			}
			_ = ec.Load(a)
			_ = ec.Load(b)
			return nil
		},
	}
	p.writeCS = &core.CS{
		Scope:       core.NewScope("micro.Write"),
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			n := ec.Load(a) + 1
			marker.BeginConflicting(ec)
			ec.Store(a, n)
			ec.Store(b, n)
			marker.EndConflicting(ec)
			return nil
		},
	}
	return p
}

// elisionPct reads the realized elision rate off the fixture's collector.
func (p *microPair) elisionPct() float64 { return 100 * p.c.Snapshot().ElisionRate() }

// executeBench measures the steady-state Execute cost of one CS under one
// policy, returning the realized elision rate alongside.
func executeBench(policy func() core.Policy, read bool) (testing.BenchmarkResult, float64) {
	return executeBenchTiming(policy, read, false)
}

// executeBenchTiming is executeBench with the timing layer optionally on;
// the -timing suite entries exist so the histogram/attribution overhead is
// a standing number in the BENCH report rather than folklore.
func executeBenchTiming(policy func() core.Policy, read, timing bool) (testing.BenchmarkResult, float64) {
	p := newMicroPair(policy(), timing)
	thr := p.rt.NewThread()
	cs := p.writeCS
	if read {
		cs = p.readCS
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.lock.Execute(thr, cs); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, p.elisionPct()
}

// granuleBench measures Execute of a trivial body under LockOnly with the
// per-thread granule cache either always hitting (one hot scope) or
// churning: cycling through 4x more contexts than the cache holds, so
// most resolutions evict and fall through to the shared table. The
// difference between the two isolates granule-resolution cost.
func granuleBench(scopes int) testing.BenchmarkResult {
	rt := core.NewRuntime(tm.NewDomain(microProfile()))
	l := rt.NewLock("granule", locks.NewTATAS(rt.Domain()), core.NewLockOnly())
	thr := rt.NewThread()
	css := make([]*core.CS, scopes)
	for i := range css {
		css[i] = &core.CS{Scope: core.NewScope("g"), Body: func(*core.ExecCtx) error { return nil }}
	}
	// Warm: register every granule so the measured loop never allocates.
	for _, cs := range css {
		if err := l.Execute(thr, cs); err != nil {
			panic(err)
		}
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := l.Execute(thr, css[i%len(css)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// granuleChurnScopes is 4x the engine's per-thread cache size (64 slots),
// kept as a literal so bench does not need access to core internals.
const granuleChurnScopes = 256

// microBench is one suite entry. elidable marks the engine benchmarks
// whose realized elision rate is a meaningful output; substrate and
// granule-lookup entries have no lock to elide, and their reports omit
// the field entirely.
type microBench struct {
	name     string
	elidable bool
	run      func() (testing.BenchmarkResult, float64)
}

// microBenches is the suite in display order.
func microBenches() []microBench {
	return []microBench{
		{name: "tm/load-8", run: func() (testing.BenchmarkResult, float64) {
			d := tm.NewDomain(microProfile())
			vars := d.NewVars(8)
			tx := d.NewTxn(1)
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tx.Run(func(tx *tm.Txn) {
						for j := range vars {
							_ = tx.Load(&vars[j])
						}
					})
				}
			}), 0
		}},
		{name: "tm/commit-rw-8", run: func() (testing.BenchmarkResult, float64) {
			d := tm.NewDomain(microProfile())
			vars := d.NewVars(8)
			tx := d.NewTxn(1)
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tx.Run(func(tx *tm.Txn) {
						for j := range vars {
							tx.Store(&vars[j], tx.Load(&vars[j])+1)
						}
					})
				}
			}), 0
		}},
		{name: "tm/commit-disjoint-parallel", run: func() (testing.BenchmarkResult, float64) {
			// Disjoint read-write commits from every P: the GV4 commit
			// clock's pass-on-CAS-failure case. Cells are padded apart so
			// only the clock is shared.
			d := tm.NewDomain(microProfile())
			const stride = 8
			vars := d.NewVars(64 * stride)
			var seed atomic.Uint64
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					id := seed.Add(1)
					v := &vars[(id%64)*stride]
					tx := d.NewTxn(id)
					for pb.Next() {
						for {
							ok, _ := tx.Run(func(tx *tm.Txn) { tx.Add(v, 1) })
							if ok {
								break
							}
						}
					}
				})
			}), 0
		}},
		{name: "tm/commit-disjoint-sharded", run: func() (testing.BenchmarkResult, float64) {
			// The sharded-domain ablation pair: the same disjoint
			// commits, but against hand-placed per-shard Vars so each
			// worker's commit ticks a private shard clock...
			return disjointCommitBench(ScaleShardsDefault, runtime.GOMAXPROCS(0)), 0
		}},
		{name: "tm/commit-disjoint-1shard", run: func() (testing.BenchmarkResult, float64) {
			// ...while this one pins Shards: 1, so every commit still
			// CASes the single global clock. The gap between the two is
			// the commit-clock serialization the sharding removes (see
			// `alebench scale` for the full worker sweep).
			return disjointCommitBench(1, runtime.GOMAXPROCS(0)), 0
		}},
		{name: "tm/extension", run: func() (testing.BenchmarkResult, float64) {
			// Every iteration forces one timestamp extension: the
			// revalidate-and-advance path that replaces a false-conflict
			// abort.
			d := tm.NewDomain(microProfile())
			a := d.NewVar(0)
			v := d.NewVar(0)
			tx := d.NewTxn(1)
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ok, _ := tx.Run(func(tx *tm.Txn) {
						_ = tx.Load(a)
						v.StoreDirect(uint64(i))
						_ = tx.Load(v)
					})
					if !ok {
						b.Fatal("extension benchmark txn aborted")
					}
				}
			}), 0
		}},
		{name: "core/execute-htm", elidable: true, run: func() (testing.BenchmarkResult, float64) {
			return executeBench(func() core.Policy { return core.NewStatic(10, 0) }, false)
		}},
		{name: "core/execute-swopt", elidable: true, run: func() (testing.BenchmarkResult, float64) {
			return executeBench(func() core.Policy { return core.NewStatic(0, 10) }, true)
		}},
		{name: "core/execute-lock", elidable: true, run: func() (testing.BenchmarkResult, float64) {
			return executeBench(func() core.Policy { return core.NewLockOnly() }, false)
		}},
		{name: "core/execute-htm-timing", elidable: true, run: func() (testing.BenchmarkResult, float64) {
			return executeBenchTiming(func() core.Policy { return core.NewStatic(10, 0) }, false, true)
		}},
		{name: "core/execute-swopt-timing", elidable: true, run: func() (testing.BenchmarkResult, float64) {
			return executeBenchTiming(func() core.Policy { return core.NewStatic(0, 10) }, true, true)
		}},
		{name: "core/execute-lock-timing", elidable: true, run: func() (testing.BenchmarkResult, float64) {
			return executeBenchTiming(func() core.Policy { return core.NewLockOnly() }, false, true)
		}},
		{name: "core/granule-hit", run: func() (testing.BenchmarkResult, float64) {
			return granuleBench(1), 0
		}},
		{name: "core/granule-miss", run: func() (testing.BenchmarkResult, float64) {
			return granuleBench(granuleChurnScopes), 0
		}},
	}
}

// MicroBenchNames lists the suite in run order.
func MicroBenchNames() []string {
	bs := microBenches()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.name
	}
	return names
}

// RunMicro runs one pass of the whole suite, streaming a human-readable
// line per benchmark to w as results land (fixed-width columns, so
// partial output stays aligned), and returns the machine-readable
// report.
func RunMicro(w io.Writer) MicroReport { return RunMicroCount(w, 1) }

// RunMicroCount runs the suite count times and records every pass's
// ns/op as a sample (the v2 schema's repeated-measurement mode). Passes
// are interleaved — pass 2 reruns the whole suite rather than repeating
// one benchmark back to back — so slow host-state drift (thermal
// throttling, background load) spreads across every benchmark's samples
// instead of biasing whichever ran last. The reported NsPerOp is the
// median across passes; allocs/op takes the maximum so a pass that
// allocates cannot hide behind quieter ones.
func RunMicroCount(w io.Writer, count int) MicroReport {
	return runSuite(w, microBenches(), count)
}

// runSuite is the shared pass/sample/summarize loop behind RunMicroCount
// and RunScale: run every bench count times interleaved, stream the
// aligned table, report median ns/op and max allocs/op per bench.
func runSuite(w io.Writer, benches []microBench, count int) MicroReport {
	if count < 1 {
		count = 1
	}
	samples := make([][]float64, len(benches))
	allocs := make([]int64, len(benches))
	elision := make([]float64, len(benches))
	for pass := 0; pass < count; pass++ {
		if count > 1 {
			fmt.Fprintf(w, "-- pass %d/%d --\n", pass+1, count)
		}
		fmt.Fprintf(w, "%-28s %10s %10s %12s %9s\n", "benchmark", "ns/op", "allocs/op", "ops/s", "elision%")
		for i, mb := range benches {
			r, e := mb.run()
			var ns, ops float64
			if r.N > 0 {
				ns = float64(r.T.Nanoseconds()) / float64(r.N)
			}
			if r.T > 0 {
				ops = float64(r.N) / r.T.Seconds()
			}
			samples[i] = append(samples[i], ns)
			a := r.AllocsPerOp()
			if pass == 0 || a > allocs[i] {
				allocs[i] = a
			}
			elision[i] = e
			elCol := "-"
			if mb.elidable {
				elCol = fmt.Sprintf("%.1f", e)
			}
			fmt.Fprintf(w, "%-28s %10.1f %10d %12.0f %9s\n", mb.name, ns, a, ops, elCol)
		}
	}
	env := CaptureEnv()
	rep := MicroReport{Schema: MicroSchema, GoMaxProcs: runtime.GOMAXPROCS(0), Env: &env}
	for i, mb := range benches {
		med := trend.Summarize(samples[i]).Median
		res := MicroResult{
			Name:        mb.name,
			NsPerOp:     med,
			AllocsPerOp: allocs[i],
			SamplesNS:   samples[i],
		}
		if med > 0 {
			res.OpsPerSec = 1e9 / med
		}
		if mb.elidable {
			e := elision[i]
			res.ElisionPct = &e
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep
}
