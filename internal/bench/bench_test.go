package bench

import (
	"strings"
	"testing"

	"repro/internal/kyoto"
	"repro/internal/platform"
)

func TestRunHashMapAllVariants(t *testing.T) {
	for _, plat := range platform.All() {
		for _, v := range HashMapVariants() {
			res, rt, err := RunHashMap(HashMapParams{
				Platform:     plat,
				Variant:      v,
				Threads:      2,
				OpsPerThread: 2000,
				KeyRange:     512,
				MutatePct:    20,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", plat.Profile.Name, v.Name, err)
			}
			if res.Ops != 4000 || res.MopsPerS <= 0 {
				t.Errorf("%s/%s: result = %+v", plat.Profile.Name, v.Name, res)
			}
			if v.NeedsALE() && rt == nil {
				t.Errorf("%s/%s: ALE variant returned nil runtime", plat.Profile.Name, v.Name)
			}
			if !v.NeedsALE() && rt != nil {
				t.Errorf("%s/%s: baseline returned a runtime", plat.Profile.Name, v.Name)
			}
		}
	}
}

func TestRunHashMapHitRate(t *testing.T) {
	res, _, err := RunHashMap(HashMapParams{
		Platform:     platform.Haswell(),
		Variant:      HashMapVariants()[1], // Instrumented
		Threads:      1,
		OpsPerThread: 20000,
		KeyRange:     1024,
		MutatePct:    0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Half the key range is prepopulated; read-only lookups hit ~50%.
	if res.HitRate < 0.4 || res.HitRate > 0.6 {
		t.Errorf("hit rate = %.2f, want ~0.5", res.HitRate)
	}
}

func TestRunKyotoAllVariants(t *testing.T) {
	w := kyoto.DefaultWicked()
	w.KeyRange = 512
	for _, v := range KyotoVariants() {
		res, _, err := RunKyoto(KyotoParams{
			Platform:     platform.Haswell(),
			Variant:      v,
			Threads:      2,
			OpsPerThread: 1500,
			Workload:     w,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if res.Ops != 3000 || res.MopsPerS <= 0 {
			t.Errorf("%s: result = %+v", v.Name, res)
		}
	}
}

func TestRunKyotoNoMutateOnT2(t *testing.T) {
	w := kyoto.NoMutateWicked()
	w.KeyRange = 1024
	res, rt, err := RunKyoto(KyotoParams{
		Platform:     platform.T2(),
		Variant:      KyotoVariants()[3], // Static-SL-10
		Threads:      2,
		OpsPerThread: 4000,
		Workload:     w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate < 0.35 || res.HitRate > 0.65 {
		t.Errorf("nomutate hit rate = %.2f, want ~0.5 (paper's 42%% miss regime)", res.HitRate)
	}
	if rt == nil {
		t.Fatal("nil runtime")
	}
}

func TestFigurePrint(t *testing.T) {
	fig := Figure{
		Title:   "demo",
		Threads: []int{1, 2},
		Series: []Series{
			{Label: "A", Points: map[int]float64{1: 1.5, 2: 2.5}},
			{Label: "B", Points: map[int]float64{1: 0.5}},
		},
	}
	var b strings.Builder
	fig.Print(&b)
	out := b.String()
	for _, want := range []string{"demo", "A", "B", "1.500", "2.500", "0.500", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestClampThreads(t *testing.T) {
	in := []int{1, 2, 4, 8, 16}
	if got := ClampThreads(in, 4); len(got) != 3 || got[2] != 4 {
		t.Errorf("ClampThreads(4) = %v", got)
	}
	if got := ClampThreads(in, 0); len(got) != 5 {
		t.Errorf("ClampThreads(0) = %v", got)
	}
	if got := ClampThreads([]int{8, 16}, 2); len(got) != 1 || got[0] != 1 {
		t.Errorf("ClampThreads all-above = %v", got)
	}
}

func TestPlatformByFigure(t *testing.T) {
	for fig, want := range map[int]string{2: "Haswell", 3: "Rock", 4: "T2-2", 5: "Haswell"} {
		p, err := PlatformByFigure(fig)
		if err != nil || p.Profile.Name != want {
			t.Errorf("figure %d -> (%s, %v), want %s", fig, p.Profile.Name, err, want)
		}
	}
	if _, err := PlatformByFigure(9); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	for _, a := range Ablations() {
		fig, err := RunAblation(a, []int{2}, 1500, 512)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(fig.Series) != 2 {
			t.Errorf("%s: %d series, want 2", a.Name, len(fig.Series))
		}
	}
}

func TestMarkerStripingFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("striping sweep in -short mode")
	}
	fig, err := MarkerStripingFigure([]int{2}, 1500, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Errorf("series = %d, want 3", len(fig.Series))
	}
}
