package bench

import (
	"testing"

	"repro/internal/platform"
)

func TestModeSharesAndElisionRate(t *testing.T) {
	// SWOpt-only on T2, read-only: elision rate should be near 1.
	v := HashMapVariants()[4] // Static-SL-10
	_, rt, err := RunHashMap(HashMapParams{
		Platform:     platform.T2(),
		Variant:      v,
		Threads:      2,
		OpsPerThread: 5000,
		KeyRange:     512,
		MutatePct:    0,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, s, l := ModeShares(rt)
	if h != 0 {
		t.Errorf("HTM share = %.3f on a no-HTM platform", h)
	}
	if s < 0.9 {
		t.Errorf("SWOpt share = %.3f for read-only SWOpt workload, want > 0.9", s)
	}
	if got := ElisionRate(rt); got != h+s {
		t.Errorf("ElisionRate = %.3f, want %.3f", got, h+s)
	}
	if h+s+l < 0.999 || h+s+l > 1.001 {
		t.Errorf("shares sum to %.3f", h+s+l)
	}

	// Instrumented: everything through the lock.
	_, rt, err = RunHashMap(HashMapParams{
		Platform:     platform.Haswell(),
		Variant:      HashMapVariants()[1],
		Threads:      1,
		OpsPerThread: 2000,
		KeyRange:     512,
		MutatePct:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ElisionRate(rt); got != 0 {
		t.Errorf("Instrumented elision rate = %.3f, want 0", got)
	}
}

func TestElisionFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	fig, err := HashMapElisionFigure("e", platform.Haswell(), []int{2}, 1500, 512, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range fig.Series {
		if s.Label == "Uninstrumented" || s.Label == "Instrumented" {
			t.Errorf("baseline %s in elision figure", s.Label)
		}
		for th, v := range s.Points {
			if v < 0 || v > 100 {
				t.Errorf("%s@%d: elision %% = %v", s.Label, th, v)
			}
		}
	}
}
