// Deliberately dependency-free: this build environment has no module
// proxy, so everything (including the go/analysis-style framework under
// internal/analysis/framework) is implemented against the standard
// library only. Requires Go 1.22+.
module repro

go 1.22
