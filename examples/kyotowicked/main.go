// kyotowicked runs the paper's section 5 "real example": the Kyoto
// Cabinet-style cache database under the wicked workload, comparing the
// Instrumented baseline, the hand-tuned trylockspin variant, a static
// policy, and the adaptive policy — and prints the external-lock
// statistics that motivated the paper's configuration choices (42% of
// nomutate lookups miss and complete in SWOpt without touching the
// method lock).
//
//	go run ./examples/kyotowicked [-threads N] [-ops N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/kyoto"
	"repro/internal/platform"
)

func main() {
	threads := flag.Int("threads", min(4, runtime.GOMAXPROCS(0)), "worker goroutines")
	ops := flag.Int("ops", 50000, "operations per worker")
	verbose := flag.Bool("verbose", false, "print the full ALE report for the adaptive run")
	flag.Parse()

	plat := platform.Haswell()
	w := kyoto.DefaultWicked()

	fmt.Printf("Kyoto wicked: platform %s, %d threads x %d ops, keyRange %d\n\n",
		plat.Profile.String(), *threads, *ops, w.KeyRange)
	fmt.Printf("%-20s %12s %10s\n", "variant", "Mops/s", "elapsed")

	for _, v := range bench.KyotoVariants() {
		res, rt, err := bench.RunKyoto(bench.KyotoParams{
			Platform:     plat,
			Variant:      v,
			Threads:      *threads,
			OpsPerThread: *ops,
			Workload:     w,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.Name, err)
		}
		fmt.Printf("%-20s %12.3f %10v\n", v.Name, res.MopsPerS, res.Elapsed.Round(time.Millisecond))
		if *verbose && v.Name == "Adaptive-All" && rt != nil {
			fmt.Println()
			if err := rt.WriteReport(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The nomutate statistic the paper calls out.
	t2 := platform.T2()
	nm := kyoto.NoMutateWicked()
	res, _, err := bench.RunKyoto(bench.KyotoParams{
		Platform:     t2,
		Variant:      bench.KyotoVariants()[3], // Static-SL-10
		Threads:      *threads,
		OpsPerThread: *ops,
		Workload:     nm,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnomutate variant on %s: %.0f%% of lookups missed and completed via SWOpt\n",
		t2.Profile.Name, (1-res.HitRate)*100)
	fmt.Println("(the paper reports 42% on its T2-2; the exact figure depends on the key range)")
}
