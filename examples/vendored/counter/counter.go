// Package counter is a small metrics library in the idiom of real-world
// Go instrumentation packages: cumulative counters, last-value gauges,
// and a name-indexed registry, each guarded by a sync mutex. It is the
// alepatch end-to-end subject — examples/vendored/counter_converted is
// this package after `alepatch -o`, and the oracle stress harness runs
// both side by side.
package counter

import (
	"sort"
	"sync"
)

// Counter is a cumulative sum with an observation count.
type Counter struct {
	mu    sync.Mutex
	total int64
	count int64
}

// Add records one observation.
func (c *Counter) Add(v int64) {
	c.mu.Lock()
	c.total += v
	c.count++
	c.mu.Unlock()
}

// Total returns the cumulative sum.
func (c *Counter) Total() int64 {
	c.mu.Lock()
	t := c.total
	c.mu.Unlock()
	return t
}

// Count returns the number of observations.
func (c *Counter) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Snapshot returns the sum and count as one consistent pair.
func (c *Counter) Snapshot() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, c.count
}

// Mean returns the average observation; ok is false when empty.
func (c *Counter) Mean() (float64, bool) {
	c.mu.Lock()
	if c.count == 0 {
		c.mu.Unlock()
		return 0, false
	}
	m := float64(c.total) / float64(c.count)
	c.mu.Unlock()
	return m, true
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.total, c.count = 0, 0
	c.mu.Unlock()
}

// Gauge is a last-value metric. It uses an RWMutex in the original:
// gets dominate sets.
type Gauge struct {
	mu  sync.RWMutex
	val int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// Get returns the last recorded value.
func (g *Gauge) Get() int64 {
	g.mu.RLock()
	v := g.val
	g.mu.RUnlock()
	return v
}

// Registry names counters, creating each on first use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Get returns the named counter, creating it if needed.
func (r *Registry) Get(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TotalOf sums the named counters, skipping unknown names.
func (r *Registry) TotalOf(names ...string) int64 {
	var sum int64
	for _, name := range names {
		r.mu.Lock()
		c, ok := r.counters[name]
		r.mu.Unlock()
		if ok {
			sum += c.Total()
		}
	}
	return sum
}
