package counter

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Total(); got != 0 {
		t.Fatalf("zero Total = %d, want 0", got)
	}
	if _, ok := c.Mean(); ok {
		t.Fatal("empty counter reported a mean")
	}
	c.Add(5)
	c.Add(7)
	if got := c.Total(); got != 12 {
		t.Fatalf("Total = %d, want 12", got)
	}
	if got := c.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	total, count := c.Snapshot()
	if total != 12 || count != 2 {
		t.Fatalf("Snapshot = (%d, %d), want (12, 2)", total, count)
	}
	m, ok := c.Mean()
	if !ok || m != 6 {
		t.Fatalf("Mean = (%v, %v), want (6, true)", m, ok)
	}
	c.Reset()
	if total, count := c.Snapshot(); total != 0 || count != 0 {
		t.Fatalf("after Reset Snapshot = (%d, %d), want (0, 0)", total, count)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				_ = c.Total()
				_, _ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Total(); got != workers*perWorker {
		t.Fatalf("Total = %d, want %d", got, workers*perWorker)
	}
	if got := c.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if got := g.Get(); got != 0 {
		t.Fatalf("zero Get = %d, want 0", got)
	}
	g.Set(42)
	if got := g.Get(); got != 42 {
		t.Fatalf("Get = %d, want 42", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Set(int64(w))
				_ = g.Get()
			}
		}()
	}
	wg.Wait()
	if got := g.Get(); got < 0 || got > 3 {
		t.Fatalf("final Get = %d, want 0..3", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Get("a")
	if r.Get("a") != a {
		t.Fatal("Get returned a different instance for the same name")
	}
	a.Add(3)
	r.Get("b").Add(4)
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v, want [a b]", names)
	}
	if got := r.TotalOf("a", "b", "missing"); got != 7 {
		t.Fatalf("TotalOf = %d, want 7", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	names := []string{"x", "y", "z"}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := names[w%len(names)]
			for i := 0; i < 500; i++ {
				r.Get(name).Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.TotalOf(names...); got != 6*500 {
		t.Fatalf("TotalOf = %d, want %d", got, 6*500)
	}
}
