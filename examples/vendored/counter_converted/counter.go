// Package counter is a small metrics library in the idiom of real-world
// Go instrumentation packages: cumulative counters, last-value gauges,
// and a name-indexed registry, each guarded by a sync mutex. It is the
// alepatch end-to-end subject — examples/vendored/counter_converted is
// this package after `alepatch -o`, and the oracle stress harness runs
// both side by side.
package counter

import (
	"repro/internal/core"
	"sort"
	"sync/atomic"
)

// Counter is a cumulative sum with an observation count.
type Counter struct {
	mu    alepatchMutex
	total int64
	count int64
}

// Add records one observation.
func (c *Counter) Add(v int64) {
	alepatchThr := alepatchAcquire()
	alepatchLk, alepatchMK := c.mu.get("Counter.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope:       alepatchScope0,
		NoHTM:       true,
		Conflicting: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			alepatchMK.BeginConflicting(alepatchEC)
			defer alepatchMK.EndConflicting(alepatchEC)
			atomic.AddInt64(&c.total, v)
			atomic.AddInt64(&c.count, 1)
			return nil
		},
	})
	alepatchRelease(alepatchThr)

}

// Total returns the cumulative sum.
func (c *Counter) Total() int64 {
	alepatchThr := alepatchAcquire()
	var t int64
	alepatchLk, alepatchMK := c.mu.get("Counter.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope:    alepatchScope1,
		NoHTM:    true,
		HasSWOpt: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			if alepatchEC.InSWOpt() {
				alepatchVer := alepatchEC.ReadStable(alepatchMK)
				t = atomic.LoadInt64(&c.total)
				if !alepatchEC.Validate(alepatchMK, alepatchVer) {
					return alepatchEC.SWOptFail()
				}
				return nil
			}
			t = c.total
			return nil
		},
	})
	alepatchRelease(alepatchThr)

	return t
}

// Count returns the number of observations.
func (c *Counter) Count() int64 {
	alepatchThr := alepatchAcquire()
	var alepatchRet0 int64
	alepatchLk, alepatchMK := c.mu.get("Counter.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope:    alepatchScope2,
		NoHTM:    true,
		HasSWOpt: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			if alepatchEC.InSWOpt() {
				alepatchVer := alepatchEC.ReadStable(alepatchMK)
				alepatchRet0 = atomic.LoadInt64(&c.count)
				if !alepatchEC.Validate(alepatchMK, alepatchVer) {
					return alepatchEC.SWOptFail()
				}
				return nil
			}
			alepatchRet0 = c.count
			return nil
		},
	})
	alepatchRelease(alepatchThr)
	return alepatchRet0

}

// Snapshot returns the sum and count as one consistent pair.
func (c *Counter) Snapshot() (int64, int64) {
	alepatchThr := alepatchAcquire()
	var alepatchRet0 int64
	var alepatchRet1 int64
	alepatchLk, alepatchMK := c.mu.get("Counter.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope:    alepatchScope3,
		NoHTM:    true,
		HasSWOpt: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			if alepatchEC.InSWOpt() {
				alepatchVer := alepatchEC.ReadStable(alepatchMK)
				alepatchRet0 = atomic.LoadInt64(&c.total)
				alepatchRet1 = atomic.LoadInt64(&c.count)
				if !alepatchEC.Validate(alepatchMK, alepatchVer) {
					return alepatchEC.SWOptFail()
				}
				return nil
			}
			alepatchRet0 = c.total
			alepatchRet1 = c.count
			return nil
		},
	})
	alepatchRelease(alepatchThr)
	return alepatchRet0, alepatchRet1

}

// Mean returns the average observation; ok is false when empty.
func (c *Counter) Mean() (float64, bool) {
	alepatchThr := alepatchAcquire()
	var alepatchRet0 float64
	var alepatchRet1 bool
	alepatchDone := false
	var m float64
	alepatchLk, _ := c.mu.get("Counter.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope: alepatchScope4,
		NoHTM: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			if c.count == 0 {
				alepatchRet0, alepatchRet1 = 0, false
				alepatchDone = true
				return nil
			}
			m = float64(c.total) / float64(c.count)
			return nil
		},
	})
	alepatchRelease(alepatchThr)
	if alepatchDone {
		return alepatchRet0, alepatchRet1
	}

	return m, true
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	alepatchThr := alepatchAcquire()
	alepatchLk, alepatchMK := c.mu.get("Counter.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope:       alepatchScope5,
		NoHTM:       true,
		Conflicting: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			alepatchMK.BeginConflicting(alepatchEC)
			defer alepatchMK.EndConflicting(alepatchEC)
			atomic.StoreInt64(&c.total, 0)
			atomic.StoreInt64(&c.count, 0)
			return nil
		},
	})
	alepatchRelease(alepatchThr)

}

// Gauge is a last-value metric. It uses an RWMutex in the original:
// gets dominate sets.
type Gauge struct {
	mu  alepatchMutex
	val int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	alepatchThr := alepatchAcquire()
	alepatchLk, alepatchMK := g.mu.get("Gauge.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope:       alepatchScope6,
		NoHTM:       true,
		Conflicting: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			alepatchMK.BeginConflicting(alepatchEC)
			defer alepatchMK.EndConflicting(alepatchEC)
			atomic.StoreInt64(&g.val, v)
			return nil
		},
	})
	alepatchRelease(alepatchThr)

}

// Get returns the last recorded value.
func (g *Gauge) Get() int64 {
	alepatchThr := alepatchAcquire()
	var v int64
	alepatchLk, alepatchMK := g.mu.get("Gauge.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope:    alepatchScope7,
		NoHTM:    true,
		HasSWOpt: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			if alepatchEC.InSWOpt() {
				alepatchVer := alepatchEC.ReadStable(alepatchMK)
				v = atomic.LoadInt64(&g.val)
				if !alepatchEC.Validate(alepatchMK, alepatchVer) {
					return alepatchEC.SWOptFail()
				}
				return nil
			}
			v = g.val
			return nil
		},
	})
	alepatchRelease(alepatchThr)

	return v
}

// Registry names counters, creating each on first use.
type Registry struct {
	mu       alepatchMutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Get returns the named counter, creating it if needed.
func (r *Registry) Get(name string) *Counter {
	alepatchThr := alepatchAcquire()
	var alepatchRet0 *Counter
	alepatchLk, _ := r.mu.get("Registry.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope: alepatchScope8,
		NoHTM: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			c, ok := r.counters[name]
			if !ok {
				c = &Counter{}
				r.counters[name] = c
			}
			alepatchRet0 = c
			return nil
		},
	})
	alepatchRelease(alepatchThr)
	return alepatchRet0

}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	alepatchThr := alepatchAcquire()
	var alepatchRet0 []string
	alepatchLk, _ := r.mu.get("Registry.mu")
	_ = alepatchLk.Execute(alepatchThr, &core.CS{
		Scope: alepatchScope9,
		NoHTM: true,
		Body: func(alepatchEC *core.ExecCtx) error {
			names := make([]string, 0, len(r.counters))
			for name := range r.counters {
				names = append(names, name)
			}
			sort.Strings(names)
			alepatchRet0 = names
			return nil
		},
	})
	alepatchRelease(alepatchThr)
	return alepatchRet0

}

// TotalOf sums the named counters, skipping unknown names.
func (r *Registry) TotalOf(names ...string) int64 {
	var sum int64
	for _, name := range names {
		alepatchThr := alepatchAcquire()
		var c *Counter
		var ok bool
		alepatchLk, _ := r.mu.get("Registry.mu")
		_ = alepatchLk.Execute(alepatchThr, &core.CS{
			Scope: alepatchScope10,
			NoHTM: true,
			Body: func(alepatchEC *core.ExecCtx) error {
				c, ok = r.counters[name]
				return nil
			},
		})
		alepatchRelease(alepatchThr)

		if ok {
			sum += c.Total()
		}
	}
	return sum
}
