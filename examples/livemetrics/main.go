// livemetrics demonstrates the observability layer (internal/obs) around
// a running ALE workload: per-thread sharded counters scraped over HTTP
// while workers execute, periodic interval deltas on stderr, and the
// adaptive policy's learning-phase event timeline at the end.
//
//	go run ./examples/livemetrics
//	go run ./examples/livemetrics -addr :8080 -duration 30s &
//	curl localhost:8080/metrics    # Prometheus text format
//	curl localhost:8080/snapshot   # JSON snapshot (alereport -in reads these)
//	curl localhost:8080/events     # adaptive-policy event timeline
//
// The workload is the quickstart's counter pair under an adaptive policy,
// run for a fixed duration instead of a fixed op count, so there is time
// to scrape. Attaching the collector costs the workload one uncontended
// atomic add per execution; everything else happens on the scrape side.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tm"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "HTTP address for /metrics, /snapshot, /events")
	duration := flag.Duration("duration", 3*time.Second, "how long to run the workload")
	sample := flag.Duration("sample", time.Second, "interval-delta logging period (0 = off)")
	workers := flag.Int("workers", 4, "worker goroutines")
	flag.Parse()

	// The collector is created up front and handed to the runtime via
	// Options.Obs; each Thread then allocates its private counter shard.
	collector := obs.New()
	opts := core.DefaultOptions()
	opts.Obs = collector
	rt := core.NewRuntimeOpts(tm.NewDomain(platform.Haswell().Profile), opts)
	d := rt.Domain()

	lock := rt.NewLock("pairLock", locks.NewTATAS(d),
		core.NewAdaptiveCfg(core.AdaptiveConfig{PhaseExecs: 2000, InitialX: 20, XSlack: 2, BigY: 200}))
	a, b := d.NewVar(0), d.NewVar(0)
	marker := lock.NewMarker()

	writeCS := &core.CS{
		Scope:       core.NewScope("pair.write"),
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			n := ec.Load(a) + 1
			marker.BeginConflicting(ec)
			ec.Store(a, n)
			ec.Store(b, n)
			marker.EndConflicting(ec)
			return nil
		},
	}
	readCS := &core.CS{
		Scope:    core.NewScope("pair.read"),
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			if ec.InSWOpt() {
				v := ec.ReadStable(marker)
				x, y := ec.Load(a), ec.Load(b)
				if !ec.Validate(marker, v) {
					return ec.SWOptFail()
				}
				if x != y {
					return fmt.Errorf("validated SWOpt read saw %d != %d", x, y)
				}
				return nil
			}
			if x, y := ec.Load(a), ec.Load(b); x != y {
				return fmt.Errorf("exclusive read saw %d != %d", x, y)
			}
			return nil
		},
	}

	// Serve the collector while the workload runs. obs.Handler reads the
	// shards with atomic loads, so scraping needs no coordination with the
	// workers.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving live metrics on http://%s/metrics (also /snapshot, /events)\n", ln.Addr())
	srv := &http.Server{Handler: obs.Handler(collector)}
	go func() { _ = srv.Serve(ln) }()

	var sampler *obs.Sampler
	if *sample > 0 {
		sampler = obs.StartSampler(collector, *sample, os.Stderr)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := rt.NewThread()
			for i := 0; !stop.Load(); i++ {
				var err error
				if i%10 == 0 {
					err = lock.Execute(thr, writeCS)
				} else {
					err = lock.Execute(thr, readCS)
				}
				if err != nil {
					log.Fatalf("worker %d: %v", id, err)
				}
			}
		}(w)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	if sampler != nil {
		sampler.Stop() // flushes the final partial interval
	}

	// Final roll-up: the same snapshot /snapshot serves, plus the policy
	// event timeline showing the adaptive learning schedule.
	snap := collector.Snapshot()
	fmt.Printf("\nfinal: execs=%d elision=%.1f%%", snap.Execs(), 100*snap.ElisionRate())
	for m := 0; m < obs.NumModes; m++ {
		fmt.Printf(" %s=%d/%d", obs.ModeNames[m], snap.Successes(uint8(m)), snap.Attempts(uint8(m)))
	}
	fmt.Printf(" aborts=%d\n", snap.AbortsTotal())
	fmt.Printf("\nadaptive policy event timeline:\n")
	if err := obs.WriteEvents(os.Stdout, collector.Events()); err != nil {
		log.Fatal(err)
	}
	if x, y := a.LoadDirect(), b.LoadDirect(); x != y {
		log.Fatalf("invariant broken: a=%d b=%d", x, y)
	}
}
