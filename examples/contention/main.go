// contention demonstrates the timing layer (Options.Timing): latency
// histograms and the granule contention profiler answering the question
// the counter layer cannot — not just *how often* elision fails, but
// *where the wasted time goes*.
//
// Three critical sections with very different behavior share a runtime:
//
//   - counter/increment: a single hot word every thread mutates. Its
//     attempts conflict, but each conflicting attempt discards only a
//     few nanoseconds of work.
//   - registry/lookup: read-only with a SWOpt path; elides essentially
//     always and wastes essentially nothing.
//   - registry/rebuild: rare whole-structure rewrites under the same
//     lock. Aborts are few, but each one throws away a long body.
//
// This is the case abort counters cannot rank: increment and rebuild
// abort about equally often, but a rebuild abort discards roughly a
// thousand times more work. The time-weighted profile puts rebuild at
// the top of the wasted column, so "make rebuild's body HTM-friendly (or
// give it a SWOpt path)" falls straight out of the table; the latency
// histograms show what an execution costs in each mode.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

const (
	threads      = 4
	opsPerThread = 40000
)

func main() {
	collector := obs.New()
	opts := core.DefaultOptions()
	opts.Obs = collector
	opts.Timing = true // the whole point: histograms + waste attribution
	rt := core.NewRuntimeOpts(tm.NewDomain(platform.Haswell().Profile), opts)
	d := rt.Domain()

	counterLock := rt.NewLock("counter", locks.NewTATAS(d), core.NewStatic(5, 0))
	registryLock := rt.NewLock("registry", locks.NewTATAS(d), core.NewStatic(5, 10))

	hot := d.NewVar(0)
	marker := registryLock.NewMarker()
	entries := make([]*tm.Var, 64)
	for i := range entries {
		entries[i] = d.NewVar(uint64(i))
	}

	incScope := core.NewScope("increment")
	lookupScope := core.NewScope("lookup")
	rebuildScope := core.NewScope("rebuild")

	incCS := &core.CS{Scope: incScope, Body: func(ec *core.ExecCtx) error {
		ec.Add(hot, 1)
		return nil
	}}
	lookupCS := &core.CS{Scope: lookupScope, HasSWOpt: true, Body: func(ec *core.ExecCtx) error {
		if ec.InSWOpt() {
			ver := ec.ReadStable(marker)
			_ = ec.Load(entries[17])
			if !ec.Validate(marker, ver) {
				return ec.SWOptFail()
			}
			return nil
		}
		_ = ec.Load(entries[17])
		return nil
	}}
	rebuildCS := &core.CS{Scope: rebuildScope, Conflicting: true, Body: func(ec *core.ExecCtx) error {
		marker.BeginConflicting(ec)
		defer marker.EndConflicting(ec)
		for _, e := range entries {
			ec.Add(e, 1)
		}
		return nil
	}}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := rt.NewThread()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < opsPerThread; i++ {
				var err error
				switch r := rng.Intn(100); {
				case r < 50: // hot counter: every thread, every other op
					err = counterLock.Execute(thr, incCS)
				case r < 99: // registry lookups: read-mostly
					err = registryLock.Execute(thr, lookupCS)
				default: // rare rebuild
					err = registryLock.Execute(thr, rebuildCS)
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := collector.Snapshot()
	fmt.Printf("%d threads x %d ops in %v (%.1f%% elided overall)\n\n",
		threads, opsPerThread, elapsed.Round(time.Millisecond), 100*s.ElisionRate())

	fmt.Println("Per-mode execution latency (log-bucketed percentiles):")
	for _, h := range []obs.Hist{obs.HistExecHTM, obs.HistExecSWOpt, obs.HistExecLock} {
		dist := s.Latency(h)
		if dist.Count() == 0 {
			continue
		}
		fmt.Printf("  %-12s count %7d  mean %8v  p50 %8v  p99 %8v\n",
			obs.HistNames[h], dist.Count(), dist.Mean(),
			time.Duration(dist.Quantile(0.50)), time.Duration(dist.Quantile(0.99)))
	}
	fmt.Println()

	if err := rt.WriteContentionReport(os.Stdout, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading the table: registry/rebuild dominates the wasted column even")
	fmt.Println("though its abort *count* is no higher than counter/increment's — each")
	fmt.Println("rebuild abort discards a 64-entry rewrite, each increment abort a few")
	fmt.Println("nanoseconds. A count-based ranking could not tell these apart.")

	// Cross-check against the raw abort counts to make the contrast
	// explicit.
	fmt.Println()
	for _, l := range rt.Locks() {
		for _, g := range l.Granules() {
			var aborts uint64
			for r := 1; r < tm.NumAbortReasons; r++ {
				aborts += g.Aborts(tm.AbortReason(r))
			}
			fmt.Printf("  %s/%s: %d HTM aborts, %v abort work\n",
				l.Name(), g.Label(), aborts, g.WastedHTMTime().Round(time.Microsecond))
		}
	}
}
