// intsetcrossover demonstrates why mode choice must be platform- and
// workload-dependent — the core motivation of the ALE paper — using the
// sorted linked-list set: as the set grows, its traversals outgrow the
// simulated Rock HTM's read capacity and hardware transactions stop
// committing, while on the Haswell profile they keep working until much
// larger sizes. The same static policy therefore behaves completely
// differently on the two machines; the adaptive policy discovers the
// right mode on each without being told.
//
//	go run ./examples/intsetcrossover
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/platform"
	"repro/internal/tm"
)

func main() {
	fmt.Println("Contains() mode usage by set size and platform (Static-All-4:10):")
	fmt.Printf("%-10s %8s %12s %12s %12s\n", "platform", "size", "HTM", "SWOpt", "Lock")
	for _, plat := range []platform.Platform{platform.Haswell(), platform.Rock()} {
		for _, size := range []int{16, 64, 200, 600} {
			htm, sw, lk := probe(plat, size, core.NewStatic(4, 10))
			fmt.Printf("%-10s %8d %12d %12d %12d\n", plat.Profile.Name, size, htm, sw, lk)
		}
	}

	fmt.Println()
	fmt.Println("Same sweep under the Adaptive policy (it should stop attempting")
	fmt.Println("HTM exactly where the static policy above started wasting attempts):")
	fmt.Printf("%-10s %8s %12s %12s %12s\n", "platform", "size", "HTM", "SWOpt", "Lock")
	for _, plat := range []platform.Platform{platform.Haswell(), platform.Rock()} {
		for _, size := range []int{16, 64, 200, 600} {
			pol := core.NewAdaptiveCfg(core.AdaptiveConfig{
				PhaseExecs: 300, InitialX: 10, XSlack: 2, BigY: 200})
			htm, sw, lk := probe(plat, size, pol)
			fmt.Printf("%-10s %8d %12d %12d %12d\n", plat.Profile.Name, size, htm, sw, lk)
		}
	}
}

// probe fills a set to size elements, runs tail-heavy Contains traffic,
// and returns the per-mode success counts of the Contains granule.
func probe(plat platform.Platform, size int, pol core.Policy) (htm, sw, lk uint64) {
	rt := core.NewRuntime(tm.NewDomain(plat.Profile))
	s := intset.New(rt, "set", size*4+1024, pol)
	h := s.NewHandle()
	for k := 1; k <= size; k++ {
		if _, err := h.Insert(uint64(k) * 2); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4000; i++ {
		// Probe near the tail so the traversal length tracks the size.
		key := uint64(size)*2 - uint64(i%8)*2
		if _, err := h.Contains(key); err != nil {
			log.Fatal(err)
		}
	}
	for _, g := range s.Lock().Granules() {
		if g.Label() == "set.Contains" {
			htm += g.Successes(core.ModeHTM)
			sw += g.Successes(core.ModeSWOpt)
			lk += g.Successes(core.ModeLock)
		}
	}
	return htm, sw, lk
}
