// hashmapswopt walks through the paper's section 3 end to end on the
// HashMap: the basic operations, the optimistic-search variants that
// mutate through nested critical sections, the self-abort idiom, and the
// per-context statistics that explicit scopes unlock.
//
//	go run ./examples/hashmapswopt [-platform Haswell|Rock|T2-2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

func main() {
	platName := flag.String("platform", "Haswell", "simulated platform (Haswell, Rock, T2-2)")
	ops := flag.Int("ops", 100000, "operations per worker")
	flag.Parse()

	plat, err := platform.ByName(*platName)
	if err != nil {
		log.Fatal(err)
	}
	rt := core.NewRuntime(tm.NewDomain(plat.Profile))
	m := hashmap.New(rt, "tbl",
		hashmap.Config{Buckets: 1024, Capacity: 1 << 16, MarkerStripes: 1},
		core.NewAdaptive())

	workers := min(4, runtime.GOMAXPROCS(0))
	fmt.Printf("platform %s, %d workers, %d ops each, adaptive policy\n\n",
		plat.Profile.String(), workers, *ops)

	// Phase 1: mixed workload through the basic operations (section 3.2's
	// Get SWOpt path + the Remove listing's conflicting region).
	runPhase(rt, m, workers, *ops, "basic", func(h *hashmap.Handle, rng *xrand.State) error {
		key := rng.Uint64n(8192) + 1
		switch rng.Intn(10) {
		case 0, 1:
			_, err := h.Insert(key, key*10)
			return err
		case 2:
			_, err := h.Remove(key)
			return err
		default:
			_, _, err := h.Get(key)
			return err
		}
	})

	// Phase 2: the section 3.3 optimistic-search variants — Insert and
	// Remove search in SWOpt mode and mutate in a nested critical
	// section that re-validates first.
	runPhase(rt, m, workers, *ops, "optimistic-search", func(h *hashmap.Handle, rng *xrand.State) error {
		key := rng.Uint64n(8192) + 1
		switch rng.Intn(10) {
		case 0, 1:
			_, err := h.InsertOpt(key, key*10)
			return err
		case 2:
			_, err := h.RemoveOpt(key)
			return err
		default:
			_, _, err := h.Get(key)
			return err
		}
	})

	// Phase 3: the self-abort idiom — Remove's SWOpt path completes
	// misses optimistically and self-aborts on hits.
	runPhase(rt, m, workers, *ops, "self-abort", func(h *hashmap.Handle, rng *xrand.State) error {
		key := rng.Uint64n(8192) + 1
		if rng.Intn(10) < 3 {
			_, err := h.RemoveSelfAbort(key)
			return err
		}
		_, _, err := h.Get(key)
		return err
	})

	fmt.Println("final statistics report (note the separate granules per operation):")
	fmt.Println()
	if err := rt.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runPhase(rt *core.Runtime, m *hashmap.Map, workers, ops int, name string,
	step func(*hashmap.Handle, *xrand.State) error) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := m.NewHandle()
			rng := xrand.New(uint64(id)*31 + 7)
			for i := 0; i < ops; i++ {
				if err := step(h, rng); err != nil {
					log.Fatalf("phase %s worker %d: %v", name, id, err)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("phase %-18s done\n", name)
}
