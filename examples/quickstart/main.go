// Quickstart: integrate one lock-protected structure with ALE in the
// smallest possible way and watch the three execution modes at work.
//
//	go run ./examples/quickstart
//
// The structure is a pair of counters that must stay equal — the classic
// case where a lock is required but rarely contended, so lock elision
// pays. The writer critical section marks its mutation as a *conflicting
// region*; the reader critical section carries a SWOpt path validating
// against the same marker. A static policy tries HTM first, the SWOpt
// path next, and the lock last.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/platform"
	"repro/internal/tm"
)

func main() {
	// 1. Pick a simulated platform (Haswell: best-effort HTM available)
	//    and create the ALE runtime on it.
	plat := platform.Haswell()
	rt := core.NewRuntime(tm.NewDomain(plat.Profile))
	d := rt.Domain()

	// 2. Wrap an ordinary lock as an ALE lock, with a policy. This is
	//    the paper's "two simple changes" — declare metadata, initialize
	//    it — rolled into one call.
	lock := rt.NewLock("pairLock", locks.NewTATAS(d), core.NewStatic(10, 10))

	// 3. Shared data lives in transactional cells; a conflict marker
	//    covers the writer's conflicting region.
	a, b := d.NewVar(0), d.NewVar(0)
	marker := lock.NewMarker()

	// 4. Critical sections replace lock/unlock calls (BEGIN_CS/END_CS).
	writeScope := core.NewScope("pair.write")
	readScope := core.NewScope("pair.read")
	writeCS := &core.CS{
		Scope:       writeScope,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			n := ec.Load(a) + 1
			marker.BeginConflicting(ec)
			ec.Store(a, n)
			ec.Store(b, n)
			marker.EndConflicting(ec)
			return nil
		},
	}
	readCS := &core.CS{
		Scope:    readScope,
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			if ec.InSWOpt() { // GET_EXEC_MODE
				v := ec.ReadStable(marker)
				x := ec.Load(a)
				y := ec.Load(b)
				if !ec.Validate(marker, v) {
					return ec.SWOptFail() // interfered with: retry
				}
				if x != y {
					return fmt.Errorf("validated SWOpt read saw %d != %d", x, y)
				}
				return nil
			}
			if x, y := ec.Load(a), ec.Load(b); x != y {
				return fmt.Errorf("exclusive read saw %d != %d", x, y)
			}
			return nil
		},
	}

	// 5. Run. Each worker goroutine gets its own Thread handle.
	const workers, perWorker = 4, 50000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := rt.NewThread()
			for i := 0; i < perWorker; i++ {
				var err error
				if i%4 == 0 {
					err = lock.Execute(thr, writeCS)
				} else {
					err = lock.Execute(thr, readCS)
				}
				if err != nil {
					log.Fatalf("worker %d: %v", id, err)
				}
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("final counters: a=%d b=%d (want both %d)\n\n",
		a.LoadDirect(), b.LoadDirect(), workers*perWorker/4)

	// 6. The library collected per-(lock, context) statistics throughout;
	//    the report shows how often each mode ran and succeeded.
	if err := rt.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
