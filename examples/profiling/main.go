// profiling shows the paper's "reports are useful in their own right"
// workflow (section 3.4): a developer takes a lock-bound application,
// integrates its critical sections with ALE *without enabling any elision*
// (the Instrumented configuration), reads the report to find where the
// lock hurts, and then flips modes on for exactly the contexts that
// benefit — comparing throughput before and after.
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

// workload is a toy order-processing service: a hot read-mostly product
// catalog and a mutation-heavy order table, both behind single locks.
func workload(rt *core.Runtime, catalog, orders *hashmap.Map, workers, ops int) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ch := catalog.NewHandle()
			oh := orders.NewHandleWithThread(ch.Thread())
			rng := xrand.New(uint64(id)*13 + 5)
			for i := 0; i < ops; i++ {
				switch rng.Intn(10) {
				case 0, 1: // place an order
					if _, err := oh.Insert(rng.Uint64n(1<<20)+1, uint64(i)); err != nil {
						errCh <- err
						return
					}
				default: // browse the catalog
					if _, _, err := ch.Get(rng.Uint64n(4096) + 1); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return time.Since(start), nil
}

func main() {
	plat := platform.Haswell()
	workers := min(4, runtime.GOMAXPROCS(0))
	const ops = 100000

	build := func(pol func() core.Policy) (*core.Runtime, *hashmap.Map, *hashmap.Map) {
		rt := core.NewRuntime(tm.NewDomain(plat.Profile))
		catalog := hashmap.New(rt, "catalog",
			hashmap.Config{Buckets: 1024, Capacity: 1 << 13, MarkerStripes: 1}, pol())
		orders := hashmap.New(rt, "orders",
			hashmap.Config{Buckets: 4096, Capacity: 1 << 21, MarkerStripes: 1}, pol())
		seed := catalog.NewHandle()
		for k := uint64(1); k <= 4096; k++ {
			if _, err := seed.Insert(k, k); err != nil {
				log.Fatal(err)
			}
		}
		return rt, catalog, orders
	}

	// Step 1: Instrumented run — collect the profile, no elision.
	rt, catalog, orders := build(func() core.Policy { return core.NewLockOnly() })
	before, err := workload(rt, catalog, orders, workers, ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 1 — Instrumented (profile only): %v\n\n", before)
	if err := rt.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The report shows catalog.Get dominating executions and read-only —")
	fmt.Println("the classic elision candidate. orders.Insert mutates but rarely")
	fmt.Println("conflicts (wide key space), so HTM fits it. Step 2 flips both on.")
	fmt.Println()

	// Step 2: enable elision (adaptive policy decides details at runtime).
	rt2, catalog2, orders2 := build(func() core.Policy { return core.NewAdaptive() })
	after, err := workload(rt2, catalog2, orders2, workers, ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 2 — Adaptive elision enabled: %v  (%.2fx vs Instrumented)\n",
		after, before.Seconds()/after.Seconds())
}
