// phasedworkload demonstrates the repository's implementation of the
// paper's future-work direction "adapt to workloads that change over
// time".
//
// The scenario targets the one persistent pathology the execution engine
// cannot fix on its own. For HTM, the engine already self-limits inside a
// single execution (capacity aborts disable further attempts), so a stale
// HTM choice costs little. But a *SWOpt path that stops succeeding* —
// because the environment changed: a new writer process appeared, a
// dependency started churning the conflict markers — burns its whole
// retry budget Y on every execution until the policy itself changes its
// mind. The plain adaptive policy never does (it learned once); the
// drift-aware policy notices the execution-time explosion, relearns, and
// stops choosing the dead optimistic path. When the interference goes
// away it notices again and optimism returns.
//
// The environment change is injected with a flag flip (single-box runs
// cannot produce sustained cross-thread interference on demand); what is
// measured — detection, relearning, and the cost of being stuck — is the
// real mechanism.
//
//	go run ./examples/phasedworkload
package main

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tm"
)

const opsPerPhase = 30000

func main() {
	fmt.Println("A SWOpt path stops succeeding mid-run (phase 2), then recovers (phase 3).")
	fmt.Println()
	// One runtime with the timing layer on hosts all three scenarios, one
	// lock per policy: afterwards the contention profiler ranks the
	// policies by where wasted time actually went, independent of the
	// wall-clock phase numbers each scenario prints.
	opts := core.DefaultOptions()
	opts.SampleAllTimings = true // full timing signal for learner + detector
	opts.Timing = true           // latency histograms + per-granule waste attribution
	collector := obs.New()
	opts.Obs = collector // record the policy's learning-phase events
	rt := core.NewRuntimeOpts(tm.NewDomain(platform.T2().Profile), opts)
	for _, tc := range []struct {
		name string
		lock string
		pol  func() core.Policy
	}{
		{"Static-SL-50 (hand-tuned for phase 1)", "static", func() core.Policy {
			return core.NewStatic(0, 50)
		}},
		{"Adaptive (learns once)", "adaptive", func() core.Policy {
			return core.NewAdaptiveCfg(adaptiveCfg())
		}},
		{"Adaptive+Drift (relearns)", "drift", func() core.Policy {
			return core.NewDriftCfg(core.DriftConfig{
				Adaptive:   adaptiveCfg(),
				Window:     1000,
				Factor:     2.5,
				MinSamples: 100,
				MinDelta:   time.Microsecond,
				Cooldown:   500,
			})
		}},
	} {
		runScenario(rt, collector, tc.name, tc.lock, tc.pol())
	}

	// The profiler's verdict: every lock saw the same injected
	// interference, so the wasted-time ranking is a pure comparison of how
	// much each policy paid for it (the drift policy should blame the
	// least time on swopt-retry because it stopped choosing the dead
	// path).
	fmt.Println("Where the wasted time went, per policy (contention profiler):")
	if err := rt.WriteContentionReport(os.Stdout, 3); err != nil {
		log.Fatal(err)
	}
}

func adaptiveCfg() core.AdaptiveConfig {
	return core.AdaptiveConfig{PhaseExecs: 300, InitialX: 10, XSlack: 2, BigY: 50}
}

func runScenario(rt *core.Runtime, collector *obs.Collector, name, lockName string, pol core.Policy) {
	d := rt.Domain()
	lock := rt.NewLock(lockName, locks.NewTATAS(d), pol)
	eventsBefore := len(collector.Events())
	snapBefore := collector.Snapshot()
	marker := lock.NewMarker()
	v := d.NewVar(0)

	// interference simulates external marker churn: while set, every
	// optimistic validation fails, exactly as if a writer process were
	// bumping the marker continuously.
	var interference atomic.Bool

	cs := &core.CS{
		Scope:    core.NewScope("read"),
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			if ec.InSWOpt() {
				ver := ec.ReadStable(marker)
				_ = ec.Load(v)
				if interference.Load() || !ec.Validate(marker, ver) {
					return ec.SWOptFail()
				}
				return nil
			}
			_ = ec.Load(v)
			return nil
		},
	}

	thr := rt.NewThread()
	phase := func() time.Duration {
		start := time.Now()
		for i := 0; i < opsPerPhase; i++ {
			if err := lock.Execute(thr, cs); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start)
	}

	d1 := phase() // optimism works
	interference.Store(true)
	d2 := phase() // optimism dead
	interference.Store(false)
	d3 := phase() // optimism back

	fmt.Printf("%s:\n", name)
	fmt.Printf("  phase 1, optimism works:   %8.1f ms\n", d1.Seconds()*1e3)
	fmt.Printf("  phase 2, optimism dead:    %8.1f ms\n", d2.Seconds()*1e3)
	fmt.Printf("  phase 3, optimism back:    %8.1f ms\n", d3.Seconds()*1e3)
	if dp, ok := pol.(*core.DriftPolicy); ok {
		fmt.Printf("  drift relearns:            %d\n", dp.Relearns())
	}
	if events := collector.Events()[eventsBefore:]; len(events) > 0 {
		snap := collector.Snapshot().Sub(snapBefore)
		fmt.Printf("  policy event timeline (%d events, %d phase transitions, %d relearns):\n",
			len(events), snap.Get(obs.CtrPhaseTransition), snap.Get(obs.CtrRelearn))
		if err := obs.WriteEvents(os.Stdout, events); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
}
