// One testing.B benchmark per figure and table of the paper's evaluation
// (see DESIGN.md section 4 for the experiment index). Each benchmark
// sub-runs every variant curve of its figure; the reported custom metric
// Mops/s is the figure's y-axis. cmd/alebench produces the full
// thread-sweep tables; these benches pin one representative thread count
// so `go test -bench=.` regenerates every experiment in bounded time.
package repro_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/kyoto"
	"repro/internal/locks"
	"repro/internal/platform"
	"repro/internal/tm"
)

// benchThreads is the pinned thread count for figure benchmarks. It stays
// at 4 even on smaller hosts: the workloads are goroutine-based and the
// elision-vs-convoying contrast survives time-slicing.
func benchThreads() int { return 4 }

func benchHashMapFigure(b *testing.B, plat platform.Platform, mutatePct int) {
	for _, v := range bench.HashMapVariants() {
		b.Run(v.Name, func(b *testing.B) {
			threads := benchThreads()
			per := b.N/threads + 1
			res, _, err := bench.RunHashMap(bench.HashMapParams{
				Platform:     plat,
				Variant:      v,
				Threads:      threads,
				OpsPerThread: per,
				KeyRange:     4096,
				MutatePct:    mutatePct,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerS, "Mops/s")
		})
	}
}

// Figure 2: HashMap on the Haswell profile (best-effort HTM, roomy).
func BenchmarkFig2HaswellMut0(b *testing.B)  { benchHashMapFigure(b, platform.Haswell(), 0) }
func BenchmarkFig2HaswellMut20(b *testing.B) { benchHashMapFigure(b, platform.Haswell(), 20) }
func BenchmarkFig2HaswellMut50(b *testing.B) { benchHashMapFigure(b, platform.Haswell(), 50) }

// Figure 3: HashMap on the Rock profile (tight, flaky HTM).
func BenchmarkFig3RockMut0(b *testing.B)  { benchHashMapFigure(b, platform.Rock(), 0) }
func BenchmarkFig3RockMut20(b *testing.B) { benchHashMapFigure(b, platform.Rock(), 20) }
func BenchmarkFig3RockMut50(b *testing.B) { benchHashMapFigure(b, platform.Rock(), 50) }

// Figure 4: HashMap on the T2 profile (no HTM; SWOpt is the only elision).
func BenchmarkFig4T2Mut0(b *testing.B)  { benchHashMapFigure(b, platform.T2(), 0) }
func BenchmarkFig4T2Mut20(b *testing.B) { benchHashMapFigure(b, platform.T2(), 20) }
func BenchmarkFig4T2Mut50(b *testing.B) { benchHashMapFigure(b, platform.T2(), 50) }

// Figure 5: the Kyoto Cabinet wicked benchmark (RW method lock + nesting).
func BenchmarkFig5KyotoWicked(b *testing.B) {
	w := kyoto.DefaultWicked()
	w.KeyRange = 4096
	for _, v := range bench.KyotoVariants() {
		b.Run(v.Name, func(b *testing.B) {
			threads := benchThreads()
			res, _, err := bench.RunKyoto(bench.KyotoParams{
				Platform:     platform.Haswell(),
				Variant:      v,
				Threads:      threads,
				OpsPerThread: b.N/threads + 1,
				Workload:     w,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerS, "Mops/s")
		})
	}
}

// Figure 5 companion: the nomutate variant on T2 (the paper's 42%-miss
// statistic regime).
func BenchmarkFig5NoMutateT2(b *testing.B) {
	w := kyoto.NoMutateWicked()
	w.KeyRange = 4096
	for _, v := range bench.KyotoVariants() {
		b.Run(v.Name, func(b *testing.B) {
			threads := benchThreads()
			res, _, err := bench.RunKyoto(bench.KyotoParams{
				Platform:     platform.T2(),
				Variant:      v,
				Threads:      threads,
				OpsPerThread: b.N/threads + 1,
				Workload:     w,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerS, "Mops/s")
			b.ReportMetric(res.HitRate*100, "hit%")
		})
	}
}

// Table A: the section 3.4 statistics report — measures both the
// instrumented run and the report rendering.
func BenchmarkTableAStatisticsReport(b *testing.B) {
	v := bench.HashMapVariants()[8] // Adaptive-All
	_, rt, err := bench.RunHashMap(bench.HashMapParams{
		Platform:     platform.Haswell(),
		Variant:      v,
		Threads:      benchThreads(),
		OpsPerThread: 20000,
		KeyRange:     4096,
		MutatePct:    20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rt.ReportString()
		if !strings.Contains(s, "tbl") {
			b.Fatal("report missing lock")
		}
	}
}

// Mechanism ablations (DESIGN.md section 5).
func benchAblation(b *testing.B, name string) {
	var abl bench.Ablation
	found := false
	for _, a := range bench.Ablations() {
		if a.Name == name {
			abl, found = a, true
		}
	}
	if !found {
		b.Fatalf("no ablation %q", name)
	}
	for _, enabled := range []bool{true, false} {
		sub := "on"
		if !enabled {
			sub = "off"
		}
		b.Run(sub, func(b *testing.B) {
			threads := benchThreads()
			opts := core.DefaultOptions()
			abl.Set(&opts, enabled)
			res, _, err := bench.RunHashMap(bench.HashMapParams{
				Platform:     abl.Platform,
				Variant:      abl.Variant,
				Threads:      threads,
				OpsPerThread: b.N/threads + 1,
				KeyRange:     4096,
				MutatePct:    abl.MutatePct,
				Opts:         &opts,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerS, "Mops/s")
		})
	}
}

func BenchmarkAblationGrouping(b *testing.B)         { benchAblation(b, "grouping") }
func BenchmarkAblationLockHeldDiscount(b *testing.B) { benchAblation(b, "lockheld-discount") }
func BenchmarkAblationMarkerElision(b *testing.B)    { benchAblation(b, "marker-elision") }
func BenchmarkAblationSampling(b *testing.B)         { benchAblation(b, "sampling") }

// Extension: conflict-marker striping (the paper's suggested per-bucket
// refinement).
func BenchmarkExtensionMarkerStriping(b *testing.B) {
	v := bench.Variant{
		Name:       "Static-SL-10",
		Policy:     func() core.Policy { return core.NewStatic(0, 10) },
		AllowSWOpt: true,
	}
	for _, stripes := range []int{1, 16, 256} {
		b.Run(map[int]string{1: "stripes1", 16: "stripes16", 256: "stripes256"}[stripes],
			func(b *testing.B) {
				threads := benchThreads()
				res, _, err := bench.RunHashMap(bench.HashMapParams{
					Platform:     platform.T2(),
					Variant:      v,
					Threads:      threads,
					OpsPerThread: b.N/threads + 1,
					KeyRange:     4096,
					MutatePct:    20,
					Stripes:      stripes,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MopsPerS, "Mops/s")
			})
	}
}

// Extension: the intset capacity crossover — Contains cost per platform
// and set size, showing where HTM stops fitting (Rock at ~32 elements,
// Haswell at ~250) and SWOpt takes over.
func BenchmarkExtensionIntsetCrossover(b *testing.B) {
	for _, plat := range []platform.Platform{platform.Haswell(), platform.Rock()} {
		for _, size := range []int{16, 200} {
			b.Run(plat.Profile.Name+"/size"+map[int]string{16: "16", 200: "200"}[size],
				func(b *testing.B) {
					rt := core.NewRuntime(tm.NewDomain(plat.Profile))
					s := intset.New(rt, "set", size*4+1024, core.NewStatic(4, 10))
					h := s.NewHandle()
					for k := 1; k <= size; k++ {
						if _, err := h.Insert(uint64(k) * 2); err != nil {
							b.Fatal(err)
						}
					}
					tail := uint64(size) * 2
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := h.Contains(tail); err != nil {
							b.Fatal(err)
						}
					}
				})
		}
	}
}

// Substrate microbenchmark: raw simulated-HTM transaction cost, for
// calibrating how much of a figure's headroom the simulator itself eats.
func BenchmarkSubstrateHTMTxn(b *testing.B) {
	d := tm.NewDomain(platform.Haswell().Profile)
	vars := d.NewVars(8)
	tx := d.NewTxn(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Run(func(tx *tm.Txn) {
			for j := range vars {
				tx.Store(&vars[j], tx.Load(&vars[j])+1)
			}
		})
	}
}

// Extension: drift-triggered relearning. Phase 2 of the phasedworkload
// scenario — a SWOpt path that stopped succeeding — measured per op for
// the stuck learner vs the drift-aware one. The drift policy's number
// includes its relearning transient.
func BenchmarkExtensionDriftRecovery(b *testing.B) {
	acfg := core.AdaptiveConfig{PhaseExecs: 300, InitialX: 10, XSlack: 2, BigY: 50}
	for _, tc := range []struct {
		name string
		pol  func() core.Policy
	}{
		{"stuck-adaptive", func() core.Policy { return core.NewAdaptiveCfg(acfg) }},
		{"adaptive+drift", func() core.Policy {
			return core.NewDriftCfg(core.DriftConfig{
				Adaptive: acfg, Window: 1000, Factor: 2.5,
				MinSamples: 100, MinDelta: time.Microsecond, Cooldown: 500,
			})
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.SampleAllTimings = true
			rt := core.NewRuntimeOpts(tm.NewDomain(platform.T2().Profile), opts)
			d := rt.Domain()
			lock := rt.NewLock("L", locks.NewTATAS(d), tc.pol())
			marker := lock.NewMarker()
			v := d.NewVar(0)
			var interference atomic.Bool
			cs := &core.CS{
				Scope:    core.NewScope("read"),
				HasSWOpt: true,
				Body: func(ec *core.ExecCtx) error {
					if ec.InSWOpt() {
						ver := marker.ReadStable()
						_ = ec.Load(v)
						if interference.Load() || !marker.Validate(ver) {
							return ec.SWOptFail()
						}
						return nil
					}
					_ = ec.Load(v)
					return nil
				},
			}
			thr := rt.NewThread()
			// Phase 1 (not measured): learn with optimism working.
			for i := 0; i < 3000; i++ {
				if err := lock.Execute(thr, cs); err != nil {
					b.Fatal(err)
				}
			}
			interference.Store(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := lock.Execute(thr, cs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
