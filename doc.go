// Package repro is a from-scratch Go reproduction of "Adaptive Integration
// of Hardware and Software Lock Elision Techniques" (Dice, Kogan, Lev,
// Merrifield, Moir — SPAA 2014): the ALE library, every substrate it
// depends on (a simulated best-effort HTM, SNZI, statistical counters,
// seqlocks, lock implementations), the paper's HashMap and Kyoto Cabinet
// workloads, and a benchmark harness that regenerates each figure and
// table of the evaluation.
//
// Start with README.md; DESIGN.md maps the paper onto the modules and
// EXPERIMENTS.md records reproduced-vs-paper results. The root-level
// bench_test.go holds one testing.B benchmark per figure/table.
package repro
