// Command aleserve runs the network-facing ALE-backed KV server: the
// kyoto/hashmap stores behind the alekv/1 text protocol (docs/ALESERVE.md),
// served by a fixed pool of worker goroutines registered as ALE threads,
// with the obs endpoints (/metrics, /snapshot, /events, /stream) on a
// side HTTP listener.
//
// Usage:
//
//	aleserve -addr :7700 -metrics-addr :7701 -store kyoto -workers 8
//
// SIGTERM/SIGINT drains gracefully: the listener closes, in-flight
// requests finish and flush, every acknowledged operation is applied
// exactly once, and the final obs snapshot goes to -snapshot (or stderr).
//
// -flight arms the flight recorder (docs/OBSERVABILITY.md): a bounded
// black box of recent telemetry dumped as ale-flight/v1 JSON on SIGQUIT,
// on drain, and on anomaly triggers (-flight-tail, -flight-abort-rate);
// render dumps with `alereport -in`, watch live with `aletop`.
package main

import (
	"flag"
	"fmt"
	"os"
	"syscall"

	"repro/internal/platform"
	"repro/internal/server"
)

var (
	addr        = flag.String("addr", "127.0.0.1:7700", "KV listen address")
	metricsAddr = flag.String("metrics-addr", "127.0.0.1:7701",
		"obs HTTP listen address (/metrics /snapshot /events /stream); empty disables")
	workers = flag.Int("workers", 8,
		"worker pool size = ALE thread count = concurrent-connection limit")
	storeKind = flag.String("store", "kyoto", "backing store: kyoto or hashmap")
	policy    = flag.String("policy", "adaptive",
		"per-lock policy: adaptive, drift, lockonly, static:X,Y")
	slots    = flag.Int("slots", 16, "kyoto slot count")
	buckets  = flag.Int("buckets", 1024, "hash buckets per table")
	capacity = flag.Int("capacity", 1<<16, "store capacity (max live entries)")
	stripes  = flag.Int("marker-stripes", 1, "hashmap conflict-marker stripes")
	timing   = flag.Bool("timing", false,
		"enable the timing layer (latency histograms, granule attribution)")
	shards = flag.Int("shards", 0,
		"commit-clock shard count (power of two ≤ 64; 0 = auto from GOMAXPROCS, 1 = pre-sharding single clock)")
	profilePath = flag.String("profile", "",
		"profile the run: write the drained run's Chrome trace (Perfetto-loadable) to this path and log the contention profile; implies -timing and enables the event rings")
	snapshotPath = flag.String("snapshot", "",
		"write the final drained obs snapshot (JSON) to this path (default stderr)")
	flightPath = flag.String("flight", "",
		"arm the flight recorder: dump the black-box window (ale-flight/v1) to this path on SIGQUIT, drain, or anomaly; implies -timing")
	flightWindow = flag.Duration("flight-window", 0,
		"flight recorder history window (0 = default 30s)")
	flightTick = flag.Duration("flight-tick", 0,
		"flight recorder sampling period (0 = default 1s)")
	flightTail = flag.Duration("flight-tail", 0,
		"anomaly trigger: dump when a per-tick exec p99 reaches this latency (0 = off)")
	flightAbortRate = flag.Float64("flight-abort-rate", 0,
		"anomaly trigger: dump when the per-tick HTM abort rate reaches this many aborts/sec (0 = off)")
	exemplarMin = flag.Duration("exemplar-min", 0,
		"tail-exemplar capture floor: executions at least this slow attach a witness (0 = default 16µs)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aleserve:", err)
		os.Exit(1)
	}
}

func run() error {
	st, err := server.ParseStoreKind(*storeKind)
	if err != nil {
		return err
	}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		return err
	}

	snapW := os.Stderr
	if *snapshotPath != "" {
		f, err := os.Create(*snapshotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		snapW = f
	}

	cfg := server.Config{
		Addr:                *addr,
		MetricsAddr:         *metricsAddr,
		Workers:             *workers,
		Store:               st,
		Slots:               *slots,
		Buckets:             *buckets,
		Capacity:            *capacity,
		MarkerStripes:       *stripes,
		Policy:              pol,
		Platform:            platform.Haswell(),
		Timing:              *timing,
		Shards:              *shards,
		ProfilePath:         *profilePath,
		SnapshotW:           snapW,
		FlightPath:          *flightPath,
		FlightWindow:        *flightWindow,
		FlightTick:          *flightTick,
		FlightTailThreshold: *flightTail,
		FlightAbortRate:     *flightAbortRate,
		ExemplarMin:         *exemplarMin,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *flightPath != "" {
		// SIGQUIT dumps the black box without draining — the operator's
		// "what just happened" probe on a live server (replaces Go's
		// default stack-dump-and-exit for this process).
		s.DumpFlightOnSignal(syscall.SIGQUIT)
	}
	<-s.DrainOnSignal(syscall.SIGTERM, syscall.SIGINT)
	s.Close()
	return nil
}
