// Command alestress is the deterministic fault-injection stress harness:
// it drives the ALE-backed structures (hashmap, intset, queue) and the
// alepatch-converted vendored counter package through a seeded operation
// tape while a scripted fault injector forces aborts, validation
// failures, and stretched critical sections, cross-checking every
// observed result against a single-threaded sequential oracle (for the
// vendored structure, the oracle is the original mutex-based package).
//
// Usage:
//
//	alestress [flags]                      deterministic oracle run
//	alestress -soak [flags]                concurrent soak (interleaving-
//	                                       independent invariant checks)
//
// The default mode replays bit for bit: the same -seed and -script always
// produce the same tape hash and the same fault firings. On a mismatch the
// harness minimizes the failure (shortest failing prefix, load-bearing
// script rules only) and prints a reproduction command line whose flags
// are exactly the ones below — paste it to replay the bug.
//
// -seed-bug n deliberately seeds the queue's head-skip defect (every n-th
// Take skips the head advance, double-dequeuing an element). It exists to
// prove the harness catches real wrong-result bugs; see docs/TESTING.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/faultinject"
	"repro/internal/oracle"
)

// defaultScript touches every fault class with co-prime periods so the
// classes interleave rather than synchronize.
const defaultScript = "spurious-burst/41,capacity-cliff/53=24,conflict-storm/37," +
	"htm-disable/101,validate-fail/29,delay-end/43=8,lock-stretch/47=8"

var (
	structFlag = flag.String("struct", "all", "structure under test: hashmap|intset|queue|vendored|all")
	seed       = flag.Uint64("seed", 1, "tape seed; same seed + script replays bit for bit")
	opsN       = flag.Int("ops", 5000, "operations per tape (per worker in -soak mode)")
	keys       = flag.Uint64("keys", 64, "key-range size (per worker in -soak mode)")
	scriptStr  = flag.String("script", defaultScript, "fault script (empty = no injected faults)")
	queueCap   = flag.Int("queue-cap", 0, "queue capacity, rounded to a power of two (0 = default)")
	seedBug    = flag.Uint64("seed-bug", 0, "seed the queue head-skip defect every n-th take (harness self-test)")
	soak       = flag.Bool("soak", false, "concurrent soak instead of the deterministic oracle run")
	workers    = flag.Int("workers", 4, "soak workers (map/set) or producer/consumer pairs (queue)")
)

func main() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "alestress: unexpected argument %q (all inputs are flags)\n", flag.Arg(0))
		os.Exit(2)
	}
	script, err := faultinject.ParseScript(*scriptStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alestress:", err)
		os.Exit(2)
	}
	structures, err := pickStructures(*structFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alestress:", err)
		os.Exit(2)
	}

	failed := false
	for _, s := range structures {
		if *soak {
			failed = runSoak(s, script) || failed
		} else {
			failed = runDeterministic(s, script) || failed
		}
	}
	if failed {
		os.Exit(1)
	}
}

func pickStructures(name string) ([]oracle.Structure, error) {
	if name == "all" {
		all := make([]oracle.Structure, 0, oracle.NumStructures)
		for s := oracle.Structure(0); s < oracle.NumStructures; s++ {
			all = append(all, s)
		}
		return all, nil
	}
	s, err := oracle.ParseStructure(name)
	if err != nil {
		return nil, err
	}
	return []oracle.Structure{s}, nil
}

// runDeterministic executes one oracle run and reports it; the seed is
// always logged so any run (including CI soaks) can be replayed.
func runDeterministic(s oracle.Structure, script faultinject.Script) (failed bool) {
	rep := oracle.Run(oracle.Config{
		Structure:     s,
		Seed:          *seed,
		Ops:           *opsN,
		Keys:          *keys,
		Script:        script,
		QueueCap:      *queueCap,
		QueueSkipHead: *seedBug,
	})
	if rep.Repro != nil {
		fmt.Fprintf(os.Stderr, "alestress: FAIL %s (seed %d)\n%s\n", s, *seed, rep.Repro.Error())
		return true
	}
	fmt.Printf("alestress: ok %s seed=%d ops=%d keys=%d tape-hash=%#016x %s\n",
		s, *seed, rep.Ops, *keys, rep.TapeHash, firingSummary(rep.Firings))
	return false
}

// runSoak executes the concurrent soak: disjoint-key per-worker oracles
// for map/set, conservation plus per-producer FIFO order for the queue.
func runSoak(s oracle.Structure, script faultinject.Script) (failed bool) {
	firings, err := oracle.Soak(oracle.SoakConfig{
		Structure:     s,
		Seed:          *seed,
		Workers:       *workers,
		OpsPerWorker:  *opsN,
		Keys:          *keys,
		Script:        script,
		QueueCap:      *queueCap,
		QueueSkipHead: *seedBug,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alestress: FAIL %s soak (seed %d, workers %d): %v\n",
			s, *seed, *workers, err)
		return true
	}
	fmt.Printf("alestress: ok %s soak seed=%d workers=%d ops/worker=%d %s\n",
		s, *seed, *workers, *opsN, firingSummary(firings))
	return false
}

func firingSummary(firings [faultinject.NumClasses]uint64) string {
	var total uint64
	for _, f := range firings {
		total += f
	}
	out := fmt.Sprintf("faults=%d", total)
	for c, f := range firings {
		if f > 0 {
			out += fmt.Sprintf(" %s=%d", faultinject.Class(c), f)
		}
	}
	return out
}
