// Command alebench regenerates the paper's evaluation (section 5) on the
// simulated platforms: every figure's series as an aligned text table,
// the statistics report (Table A), and the mechanism ablations DESIGN.md
// calls out.
//
// Usage:
//
//	alebench [flags] fig2|fig3|fig4|fig5|report|ablation|striping|faults|micro|scale|all
//
// Figures (see DESIGN.md section 4 for the reconstruction mapping):
//
//	fig2  HashMap throughput vs threads, Haswell profile, 3 mutation mixes
//	fig3  HashMap throughput vs threads, Rock profile, 3 mutation mixes
//	fig4  HashMap throughput vs threads, T2 (no HTM), 3 mixes + nomutate stats
//	fig5  Kyoto Cabinet wicked benchmark vs threads (+ nomutate variant)
//	micro hot-path microbenchmarks (substrate + engine); -bench-json emits
//	      the machine-readable BENCH JSON cmd/alereport and CI consume
//	scale disjoint-commit throughput vs -workers, sharded commit clock
//	      against the single-clock (-shards 1) ablation
//
// Absolute numbers depend on the host; the claims under reproduction are
// the relative shapes (EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kyoto"
	"repro/internal/obs"
	"repro/internal/platform"
)

var (
	ops      = flag.Int("ops", 30000, "operations per thread per point")
	keyRange = flag.Uint64("keyrange", 4096, "HashMap key universe")
	// The sweep keeps points above the host's core count by default:
	// goroutine time-slicing still exposes the convoying-vs-elision
	// contrast the figures are about (EXPERIMENTS.md discusses reading
	// oversubscribed points).
	maxThreads = flag.Int("maxthreads", 16, "trim sweep points above this thread count (0 = keep all)")
	verbose    = flag.Bool("verbose", false, "print the ALE statistics report after each figure")

	metricsAddr = flag.String("metrics-addr", "",
		"serve live metrics over HTTP on this address (e.g. :8080; /metrics Prometheus, /snapshot JSON, /events)")
	traceCap = flag.Int("trace", 0,
		"per-thread event-ring capacity; dumps the merged trace of the last ALE run (0 = off)")
	timing = flag.Bool("timing", false,
		"enable the timing layer: latency histograms, per-granule wasted-time attribution, span durations")
	traceChrome = flag.String("trace-chrome", "",
		"write the last ALE run's event timeline as Chrome Trace Event JSON (Perfetto-loadable) to this path; implies -timing and a default -trace capacity")
	sampleInterval = flag.Duration("sample-interval", 0,
		"log interval metric deltas to stderr at this period (0 = off)")

	benchJSON = flag.String("bench-json", "",
		"with the micro and scale commands: also write the results as BENCH JSON to this path")
	scaleWorkers = flag.String("workers", "1,2,4,8",
		"with the scale command: comma-separated worker counts to sweep")
	scaleShards = flag.Int("shards", bench.ScaleShardsDefault,
		"with the scale command: shard count of the sharded configuration (the ablation leg always runs with 1 shard)")
	benchCount = flag.Int("count", 1,
		"with the micro command: repeat the whole suite this many times, recording every pass as a sample (the v2 schema's noise model; baselines use ≥5)")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	memProfile = flag.String("memprofile", "", "write a heap profile at exit to this path")
)

// metricsURL is the base URL of the live metrics server after setupObs
// bound its listener ("" when -metrics-addr is off). With an explicit
// port it only restates the flag; with ":0" it carries the chosen port.
var metricsURL string

func main() {
	flag.Parse()
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	teardown, err := setupObs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "alebench:", err)
		os.Exit(1)
	}
	stopProfiles, err := setupProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "alebench:", err)
		os.Exit(1)
	}
	if err := run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "alebench:", err)
		os.Exit(1)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "alebench:", err)
		os.Exit(1)
	}
	if err := teardown(); err != nil {
		fmt.Fprintln(os.Stderr, "alebench:", err)
		os.Exit(1)
	}
}

// setupProfiles starts the -cpuprofile capture and returns a stop function
// that finishes it and writes the -memprofile heap snapshot. Profiles
// cover the whole command (sweep or micro suite), the usual way to find
// where a regression's time or allocations went.
func setupProfiles() (func() error, error) {
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "alebench: wrote CPU profile to %s\n", *cpuProfile)
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			fmt.Fprintf(os.Stderr, "alebench: wrote heap profile to %s\n", *memProfile)
		}
		return nil
	}, nil
}

// setupObs wires the observability flags into the bench harness: it
// installs a base option set carrying the shared obs collector and trace
// capacity, serves the collector over HTTP when -metrics-addr is set, and
// starts the interval sampler when -sample-interval is set. The returned
// teardown stops the sampler (flushing its final partial interval) and
// dumps the last run's trace when -trace is on.
func setupObs() (func() error, error) {
	if *traceChrome != "" {
		// A Chrome trace without spans or events is useless: turn the
		// timing layer on and give the rings a capacity if the user set
		// neither.
		*timing = true
		if *traceCap == 0 {
			*traceCap = 8192
		}
	}
	if *metricsAddr == "" && *traceCap == 0 && *sampleInterval == 0 && !*timing {
		return func() error { return nil }, nil
	}
	opts := core.DefaultOptions()
	opts.TraceCapacity = *traceCap
	opts.Timing = *timing
	collector := obs.New()
	opts.Obs = collector
	bench.SetBaseOptions(opts)

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		metricsURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "alebench: serving metrics on %s/metrics\n", metricsURL)
		srv := &http.Server{Handler: obs.Handler(collector)}
		go func() { _ = srv.Serve(ln) }()
	}

	var sampler *obs.Sampler
	if *sampleInterval > 0 {
		sampler = obs.StartSampler(collector, *sampleInterval, os.Stderr)
	}

	return func() error {
		if sampler != nil {
			sampler.Stop()
		}
		rt := bench.LastRuntime()
		if *traceChrome != "" && rt != nil {
			f, err := os.Create(*traceChrome)
			if err != nil {
				return err
			}
			if err := rt.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "alebench: wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n",
				*traceChrome)
		} else if *traceCap > 0 && rt != nil {
			fmt.Println("\n== Trace: merged event timeline of the last ALE run ==")
			if err := rt.WriteTrace(os.Stdout); err != nil {
				return err
			}
		}
		if *timing && rt != nil {
			fmt.Println("\n== Contention profile of the last ALE run ==")
			if err := rt.WriteContentionReport(os.Stdout, 10); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func run(cmd string) error {
	switch cmd {
	case "fig2":
		return hashmapFigure(2)
	case "fig3":
		return hashmapFigure(3)
	case "fig4":
		return hashmapFigure(4)
	case "fig5":
		return kyotoFigure()
	case "report":
		return report()
	case "ablation":
		return ablations()
	case "striping":
		return striping()
	case "faults":
		return faultAblation()
	case "micro":
		return micro()
	case "scale":
		return scale()
	case "all":
		for _, c := range []string{"fig2", "fig3", "fig4", "fig5", "report", "ablation", "striping", "faults"} {
			if err := run(c); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown command %q (want fig2|fig3|fig4|fig5|report|ablation|striping|faults|micro|scale|all)", cmd)
}

func hashmapFigure(figNum int) error {
	plat, err := bench.PlatformByFigure(figNum)
	if err != nil {
		return err
	}
	threads := bench.ClampThreads(plat.Threads, *maxThreads)
	for _, mutate := range []int{0, 20, 50} {
		title := fmt.Sprintf("Figure %d (%s): HashMap, %d%% mutation", figNum, plat.Profile.Name, mutate)
		fig, err := bench.HashMapFigure(title, plat, threads, *ops, *keyRange, mutate)
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
		efig, err := bench.HashMapElisionFigure(title+" — elision rate", plat, threads,
			*ops, *keyRange, mutate)
		if err != nil {
			return err
		}
		efig.Print(os.Stdout)
	}
	if *verbose {
		return verboseHashMapStats(plat)
	}
	return nil
}

// verboseHashMapStats reruns one mixed-workload point under the adaptive
// policy and prints the full per-granule report (the paper's section 3.4
// reports, and the Table B counters of DESIGN.md).
func verboseHashMapStats(plat platform.Platform) error {
	v := bench.HashMapVariants()[8] // Adaptive-All
	_, rt, err := bench.RunHashMap(bench.HashMapParams{
		Platform:     plat,
		Variant:      v,
		Threads:      min(4, runtime.GOMAXPROCS(0)),
		OpsPerThread: *ops,
		KeyRange:     *keyRange,
		MutatePct:    20,
	})
	if err != nil {
		return err
	}
	return rt.WriteReport(os.Stdout)
}

func kyotoFigure() error {
	plat, _ := bench.PlatformByFigure(5)
	threads := bench.ClampThreads(plat.Threads, *maxThreads)
	w := kyoto.DefaultWicked()
	fig, err := bench.KyotoFigure("Figure 5 (Haswell): Kyoto Cabinet wicked benchmark",
		plat, threads, *ops, w)
	if err != nil {
		return err
	}
	fig.Print(os.Stdout)
	efig, err := bench.KyotoElisionFigure("Figure 5 — elision rate", plat, threads, *ops, w)
	if err != nil {
		return err
	}
	efig.Print(os.Stdout)

	// The nomutate variant on the no-HTM platform — the configuration
	// whose statistics (42% SWOpt-succeeding misses) the paper discusses.
	t2 := platform.T2()
	nm := kyoto.NoMutateWicked()
	fig, err = bench.KyotoFigure("Figure 5 companion (T2-2): wicked nomutate variant",
		t2, bench.ClampThreads(t2.Threads, *maxThreads), *ops, nm)
	if err != nil {
		return err
	}
	fig.Print(os.Stdout)

	res, rt, err := bench.RunKyoto(bench.KyotoParams{
		Platform:     t2,
		Variant:      bench.KyotoVariants()[3], // Static-SL-10
		Threads:      min(4, runtime.GOMAXPROCS(0)),
		OpsPerThread: *ops,
		Workload:     nm,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nnomutate/T2 statistics: lookup hit rate %.0f%% (miss rate %.0f%% — "+
		"the paper reports 42%% of executions missing and hence succeeding via SWOpt)\n",
		res.HitRate*100, (1-res.HitRate)*100)
	if *verbose {
		return rt.WriteReport(os.Stdout)
	}
	return nil
}

// report demonstrates the statistics/profiling reports of section 3.4
// (Table A): a short mixed run on each platform under the adaptive policy.
func report() error {
	fmt.Println("\n== Table A: ALE statistics report (section 3.4) ==")
	for _, plat := range platform.All() {
		v := bench.HashMapVariants()[8] // Adaptive-All
		_, rt, err := bench.RunHashMap(bench.HashMapParams{
			Platform:     plat,
			Variant:      v,
			Threads:      min(4, runtime.GOMAXPROCS(0)),
			OpsPerThread: *ops / 2,
			KeyRange:     *keyRange,
			MutatePct:    20,
		})
		if err != nil {
			return err
		}
		if err := rt.WriteReport(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func ablations() error {
	threads := bench.ClampThreads([]int{1, 2, 4, 8}, *maxThreads)
	for _, a := range bench.Ablations() {
		fig, err := bench.RunAblation(a, threads, *ops, *keyRange)
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
	}
	return nil
}

func striping() error {
	threads := bench.ClampThreads([]int{1, 2, 4, 8}, *maxThreads)
	fig, err := bench.MarkerStripingFigure(threads, *ops, *keyRange)
	if err != nil {
		return err
	}
	fig.Print(os.Stdout)
	return nil
}

// micro runs the hot-path microbenchmark suite (internal/bench
// RunMicroCount): substrate transaction costs, per-mode Execute, and
// granule lookup, repeated -count times with every pass recorded as a
// sample. With -bench-json the machine-readable report is also written,
// the format cmd/alereport renders, compares (-compare), and CI archives.
func micro() error {
	fmt.Println("== Hot-path microbenchmarks ==")
	rep := bench.RunMicroCount(os.Stdout, *benchCount)
	if *benchJSON == "" {
		return nil
	}
	f, err := os.Create(*benchJSON)
	if err != nil {
		return err
	}
	if err := bench.WriteMicroJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "alebench: wrote %s\n", *benchJSON)
	return nil
}

// scale runs the disjoint-commit scaling family (internal/bench
// RunScale): for each -workers count, the sharded commit clock against
// its single-clock ablation. Like micro, -bench-json writes the result
// in the BENCH JSON schema so cmd/alereport and CI can consume it.
func scale() error {
	workers, err := parseWorkers(*scaleWorkers)
	if err != nil {
		return err
	}
	fmt.Printf("== Disjoint-commit scaling: %d shards vs 1 shard ==\n", *scaleShards)
	rep := bench.RunScale(os.Stdout, workers, *scaleShards, *benchCount)
	if *benchJSON == "" {
		return nil
	}
	f, err := os.Create(*benchJSON)
	if err != nil {
		return err
	}
	if err := bench.WriteMicroJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "alebench: wrote %s\n", *benchJSON)
	return nil
}

// parseWorkers parses the -workers sweep list ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-workers: %q is not a positive worker count", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// faultAblation runs the injected-fault regime table (internal/bench
// FaultAblationTable): throughput of each policy variant under each
// scripted fault class, quantifying how the adaptive policy reroutes
// around degraded mechanisms.
func faultAblation() error {
	plat := platform.Haswell()
	tbl, err := bench.FaultAblationTable(plat, min(4, runtime.GOMAXPROCS(0)),
		*ops/2, *keyRange, 20)
	if err != nil {
		return err
	}
	tbl.Print(os.Stdout)
	return nil
}
