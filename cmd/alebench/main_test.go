package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunCommandsSmoke drives each subcommand with a tiny workload; this
// catches wiring regressions (flag plumbing, figure construction) without
// paying for a real sweep.
func TestRunCommandsSmoke(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	// The commands print figure tables to stdout; silence them so test
	// logs stay readable.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	for _, cmd := range []string{"fig2", "fig4", "fig5", "report", "striping"} {
		t.Run(cmd, func(t *testing.T) {
			if err := run(cmd); err != nil {
				t.Fatalf("run(%s): %v", cmd, err)
			}
		})
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run("fig9"); err == nil {
		t.Error("unknown command accepted")
	}
}

// TestObservabilityFlags drives the -metrics-addr/-trace/-sample-interval
// wiring end to end: a tiny sweep runs with the shared collector attached,
// the live HTTP endpoints serve Prometheus text and snapshot JSON while
// the process is up, and teardown dumps the last run's merged trace.
func TestObservabilityFlags(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	*metricsAddr = "127.0.0.1:0"
	*traceCap = 64
	*sampleInterval = 50 * time.Millisecond
	defer func() {
		*metricsAddr = ""
		*traceCap = 0
		*sampleInterval = 0
		metricsURL = ""
	}()

	teardown, err := setupObs()
	if err != nil {
		t.Fatal(err)
	}
	if metricsURL == "" {
		t.Fatal("setupObs did not record the metrics URL")
	}

	// Capture stdout (figure tables + the teardown trace dump).
	tmp, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = tmp
	runErr := run("striping")
	tearErr := teardown()
	os.Stdout = old

	if runErr != nil {
		t.Fatalf("run(striping): %v", runErr)
	}
	if tearErr != nil {
		t.Fatalf("teardown: %v", tearErr)
	}

	// The acceptance check: scraping /metrics during the process's
	// lifetime yields per-mode counters and the elision-rate gauge.
	resp, err := http.Get(metricsURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"ale_execs_total",
		`ale_attempts_total{mode="htm"}`,
		`ale_successes_total{mode="swopt"}`,
		`ale_aborts_total{reason="conflict"}`,
		"ale_elision_rate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var snap struct {
		Execs uint64 `json:"execs"`
	}
	resp, err = http.Get(metricsURL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/snapshot is not JSON: %v", err)
	}
	if snap.Execs == 0 {
		t.Error("/snapshot reports zero execs after a sweep")
	}

	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "== Trace: merged event timeline") {
		t.Error("teardown did not dump the trace (-trace flag wiring broken)")
	}
}

// TestMetricsEndpointsAllPlanes is alebench's half of the obs-wiring
// dedup regression (aleserve's half is TestServerMetricsEndpoints in
// internal/server): both binaries mount the one shared obs.Handler, so
// every plane — index advertising /stream, Prometheus text, snapshot
// JSON, the event timeline in both renderings, and the NDJSON live
// stream — must be served here too.
func TestMetricsEndpointsAllPlanes(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	*metricsAddr = "127.0.0.1:0"
	defer func() {
		*metricsAddr = ""
		metricsURL = ""
	}()

	teardown, err := setupObs()
	if err != nil {
		t.Fatal(err)
	}

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	runErr := run("striping")
	os.Stdout = old
	devnull.Close()
	if runErr != nil {
		t.Fatalf("run(striping): %v", runErr)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(metricsURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/"); !strings.Contains(body, "/stream") {
		t.Errorf("index page does not advertise /stream: %q", body)
	}
	if body, _ := get("/metrics"); !strings.Contains(body, "ale_execs_total") {
		t.Error("/metrics missing ale_execs_total")
	}
	if body, ct := get("/snapshot"); ct != "application/json" || !strings.Contains(body, "ale-snapshot/v1") {
		t.Errorf("/snapshot: content-type %q", ct)
	}
	if _, ct := get("/events"); ct != "text/plain; charset=utf-8" {
		t.Errorf("/events: content-type %q", ct)
	}
	if _, ct := get("/events?format=json"); ct != "application/json" {
		t.Errorf("/events?format=json: content-type %q", ct)
	}
	body, ct := get("/stream?interval=10ms&n=1")
	if ct != "application/x-ndjson" {
		t.Errorf("/stream: content-type %q", ct)
	}
	snaps, err := obs.ParseSnapshots([]byte(body))
	if err != nil {
		t.Fatalf("/stream body does not parse as snapshots: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("/stream?n=1 returned %d snapshots, want 2 (cumulative + 1 delta)", len(snaps))
	}
	if snaps[0].Execs() == 0 {
		t.Error("stream baseline shows zero execs after a sweep")
	}

	if err := teardown(); err != nil {
		t.Fatalf("teardown: %v", err)
	}
}

// TestTraceChromeFlag drives `-trace-chrome out.json` end to end: it
// implies -timing and a ring capacity, the teardown writes the file, and
// the output is valid Chrome Trace Event JSON with duration spans plus the
// contention profile on stdout.
func TestTraceChromeFlag(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	path := t.TempDir() + "/out.trace.json"
	*traceChrome = path
	defer func() {
		*traceChrome = ""
		*timing = false
		*traceCap = 0
	}()

	teardown, err := setupObs()
	if err != nil {
		t.Fatal(err)
	}
	if !*timing || *traceCap == 0 {
		t.Fatalf("-trace-chrome should imply -timing and a trace capacity; got timing=%v trace=%d",
			*timing, *traceCap)
	}

	tmp, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = tmp
	runErr := run("striping")
	tearErr := teardown()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run(striping): %v", runErr)
	}
	if tearErr != nil {
		t.Fatalf("teardown: %v", tearErr)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("chrome trace has no duration spans (timing wiring broken)")
	}

	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "== Contention profile") {
		t.Error("teardown did not print the contention profile (-timing wiring broken)")
	}
}
