package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestRunCommandsSmoke drives each subcommand with a tiny workload; this
// catches wiring regressions (flag plumbing, figure construction) without
// paying for a real sweep.
func TestRunCommandsSmoke(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	// The commands print figure tables to stdout; silence them so test
	// logs stay readable.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	for _, cmd := range []string{"fig2", "fig4", "fig5", "report", "striping"} {
		t.Run(cmd, func(t *testing.T) {
			if err := run(cmd); err != nil {
				t.Fatalf("run(%s): %v", cmd, err)
			}
		})
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run("fig9"); err == nil {
		t.Error("unknown command accepted")
	}
}

// TestObservabilityFlags drives the -metrics-addr/-trace/-sample-interval
// wiring end to end: a tiny sweep runs with the shared collector attached,
// the live HTTP endpoints serve Prometheus text and snapshot JSON while
// the process is up, and teardown dumps the last run's merged trace.
func TestObservabilityFlags(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	*metricsAddr = "127.0.0.1:0"
	*traceCap = 64
	*sampleInterval = 50 * time.Millisecond
	defer func() {
		*metricsAddr = ""
		*traceCap = 0
		*sampleInterval = 0
		metricsURL = ""
	}()

	teardown, err := setupObs()
	if err != nil {
		t.Fatal(err)
	}
	if metricsURL == "" {
		t.Fatal("setupObs did not record the metrics URL")
	}

	// Capture stdout (figure tables + the teardown trace dump).
	tmp, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = tmp
	runErr := run("striping")
	tearErr := teardown()
	os.Stdout = old

	if runErr != nil {
		t.Fatalf("run(striping): %v", runErr)
	}
	if tearErr != nil {
		t.Fatalf("teardown: %v", tearErr)
	}

	// The acceptance check: scraping /metrics during the process's
	// lifetime yields per-mode counters and the elision-rate gauge.
	resp, err := http.Get(metricsURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"ale_execs_total",
		`ale_attempts_total{mode="htm"}`,
		`ale_successes_total{mode="swopt"}`,
		`ale_aborts_total{reason="conflict"}`,
		"ale_elision_rate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var snap struct {
		Execs uint64 `json:"execs"`
	}
	resp, err = http.Get(metricsURL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/snapshot is not JSON: %v", err)
	}
	if snap.Execs == 0 {
		t.Error("/snapshot reports zero execs after a sweep")
	}

	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "== Trace: merged event timeline") {
		t.Error("teardown did not dump the trace (-trace flag wiring broken)")
	}
}

// TestTraceChromeFlag drives `-trace-chrome out.json` end to end: it
// implies -timing and a ring capacity, the teardown writes the file, and
// the output is valid Chrome Trace Event JSON with duration spans plus the
// contention profile on stdout.
func TestTraceChromeFlag(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	path := t.TempDir() + "/out.trace.json"
	*traceChrome = path
	defer func() {
		*traceChrome = ""
		*timing = false
		*traceCap = 0
	}()

	teardown, err := setupObs()
	if err != nil {
		t.Fatal(err)
	}
	if !*timing || *traceCap == 0 {
		t.Fatalf("-trace-chrome should imply -timing and a trace capacity; got timing=%v trace=%d",
			*timing, *traceCap)
	}

	tmp, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = tmp
	runErr := run("striping")
	tearErr := teardown()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run(striping): %v", runErr)
	}
	if tearErr != nil {
		t.Fatalf("teardown: %v", tearErr)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("chrome trace has no duration spans (timing wiring broken)")
	}

	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "== Contention profile") {
		t.Error("teardown did not print the contention profile (-timing wiring broken)")
	}
}
