package main

import (
	"os"
	"testing"
)

// TestRunCommandsSmoke drives each subcommand with a tiny workload; this
// catches wiring regressions (flag plumbing, figure construction) without
// paying for a real sweep.
func TestRunCommandsSmoke(t *testing.T) {
	*ops = 300
	*keyRange = 256
	*maxThreads = 2
	// The commands print figure tables to stdout; silence them so test
	// logs stay readable.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	for _, cmd := range []string{"fig2", "fig4", "fig5", "report", "striping"} {
		t.Run(cmd, func(t *testing.T) {
			if err := run(cmd); err != nil {
				t.Fatalf("run(%s): %v", cmd, err)
			}
		})
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run("fig9"); err == nil {
		t.Error("unknown command accepted")
	}
}
