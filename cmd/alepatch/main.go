// Command alepatch converts sync.Mutex/sync.RWMutex critical sections
// into ALE Lock.Execute calls, or reports which regions would convert
// and why the rest cannot. See internal/analysis/alepatch.
package main

import (
	"os"

	"repro/internal/analysis/alepatch"
)

func main() {
	os.Exit(alepatch.Main(os.Args[1:]))
}
