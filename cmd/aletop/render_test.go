package main

// The render golden test pins the aletop frame layout byte-for-byte on a
// hand-built snapshot pair exercising every section: header, mode bars,
// abort row, latency table, shard clocks, contention profile, and tail
// exemplars. RenderFrame is pure, so the frame is exactly reproducible.
// Regenerate with:
//
//	go test ./cmd/aletop -run TestRenderFrameGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tm"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden files")

// fixtureSnapshots builds a deterministic (cumulative, delta) pair with
// every section populated.
func fixtureSnapshots() (cum, delta obs.Snapshot) {
	cum.At = time.Unix(1000, 0)
	cum.Interval = 90 * time.Second
	cum.Counts[obs.CtrSuccessLock] = 1200
	cum.Counts[obs.CtrSuccessHTM] = 48_000
	cum.Counts[obs.CtrSuccessSWOpt] = 6_500
	cum.Counts[obs.CtrAbort(tm.AbortConflict)] = 900
	cum.Counts[obs.CtrAbort(tm.AbortCapacity)] = 40
	cum.Counts[obs.CtrSWOptFail] = 120
	cum.Counts[obs.CtrFallback] = 31
	// One histogram observation per decade bucket gives stable quantiles.
	for _, ns := range []int64{800, 9_000, 70_000, 1_100_000} {
		cum.Lat[obs.HistExecHTM].Buckets[stats.LogBucketOf(ns)]++
		cum.Lat[obs.HistExecHTM].SumNS += uint64(ns)
	}
	cum.Lat[obs.HistExecLock].Buckets[stats.LogBucketOf(50_000)] = 2
	cum.Lat[obs.HistExecLock].SumNS = 100_000
	cum.Shards = []obs.ShardEntry{{Shard: 0, Clock: 41_000}, {Shard: 1, Clock: 39_500}, {Shard: 2, Clock: 44_210}, {Shard: 3, Clock: 8}}
	cum.Contention = []obs.ContentionEntry{
		{Lock: "kv", Context: "bucket-17", Execs: 9000, ElisionPct: 88.5, WastedNS: 410_000_000, PayoffNS: 1_200_000_000},
		{Lock: "kv", Context: "bucket-3", Execs: 400, ElisionPct: 99.0, WastedNS: 2_000_000, PayoffNS: 90_000_000},
	}
	cum.Exemplars = []obs.ExemplarRow{
		{Hist: "exec_htm", Bucket: 20, UpperNS: 1 << 26, Count: 3, LatNS: 1_100_000,
			Lock: "kv", Granule: "bucket-17", Mode: "htm", Attempts: 4,
			Aborts: []string{"conflict", "capacity"}, WastedNS: 600_000, RequestID: (7 << 20) | 42},
		{Hist: "exec_lock", Bucket: 16, UpperNS: 1 << 22, Count: 9, LatNS: 52_000,
			Lock: "kv", Granule: "bucket-3", Mode: "lock"},
	}

	delta.At = cum.At.Add(time.Second)
	delta.Interval = time.Second
	delta.Counts[obs.CtrSuccessLock] = 20
	delta.Counts[obs.CtrSuccessHTM] = 610
	delta.Counts[obs.CtrSuccessSWOpt] = 95
	delta.Counts[obs.CtrAbort(tm.AbortConflict)] = 12
	delta.Counts[obs.CtrSWOptFail] = 3
	return cum, delta
}

func TestRenderFrameGolden(t *testing.T) {
	cum, delta := fixtureSnapshots()
	got := RenderFrame(cum, delta, 100)
	path := filepath.Join("testdata", "frame.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("frame drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestRenderFrameSparse checks the degenerate screens: a zero-value pair
// (top of a fresh process) renders without panicking and omits every
// optional section, and narrow widths clamp instead of underflowing the
// bar math.
func TestRenderFrameSparse(t *testing.T) {
	got := RenderFrame(obs.Snapshot{}, obs.Snapshot{}, 0)
	for _, banned := range []string{"aborts:", "latency", "shard", "granules", "exemplars"} {
		if strings.Contains(got, banned) {
			t.Errorf("empty frame renders %q section:\n%s", banned, got)
		}
	}
	if !strings.Contains(got, "execs 0") || !strings.Contains(got, "(-/s)") {
		t.Errorf("empty frame header wrong:\n%s", got)
	}
}

// TestAccumulateInvertsSub pins the client-side folding: for cumulative
// snapshots s1 ⊆ s2, accumulate(s1, s2.Sub(s1)) restores s2's counters,
// histograms, and point-in-time planes — the invariant that keeps the
// dashboard's cumulative view equal to a fresh /snapshot scrape.
func TestAccumulateInvertsSub(t *testing.T) {
	s1, _ := fixtureSnapshots()
	s2 := s1
	s2.At = s1.At.Add(5 * time.Second)
	s2.Interval = s1.Interval + 5*time.Second
	s2.Counts[obs.CtrSuccessHTM] += 777
	s2.Counts[obs.CtrAbort(tm.AbortExplicit)] = 5
	s2.Lat[obs.HistExecHTM].Buckets[3] += 9
	s2.Lat[obs.HistExecHTM].SumNS += 4096
	s2.Shards = []obs.ShardEntry{{Shard: 0, Clock: 99_000}}
	s2.Exemplars = append([]obs.ExemplarRow(nil), s2.Exemplars...)
	s2.Exemplars[0].LatNS = 2_000_000

	got := accumulate(s1, s2.Sub(s1))
	if got.Counts != s2.Counts {
		t.Errorf("counts diverged:\n got %v\nwant %v", got.Counts, s2.Counts)
	}
	if got.Lat != s2.Lat {
		t.Error("latency histograms diverged")
	}
	if got.At != s2.At || got.Interval != s2.Interval {
		t.Errorf("time plane diverged: %v/%v vs %v/%v", got.At, got.Interval, s2.At, s2.Interval)
	}
	if len(got.Shards) != 1 || got.Shards[0].Clock != 99_000 {
		t.Errorf("shards not replaced by the delta's: %+v", got.Shards)
	}
	if got.Exemplars[0].LatNS != 2_000_000 {
		t.Errorf("exemplars not replaced by the delta's: %+v", got.Exemplars[0])
	}
}
