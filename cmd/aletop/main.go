// Command aletop is a live terminal dashboard over an ALE process's
// /stream telemetry endpoint (aleserve -metrics-addr, or alebench
// -metrics): per-mode execution mix, elision rate, abort reasons,
// latency percentiles, per-shard commit clocks, the contention profile,
// and the tail-latency exemplars — refreshed in place like top(1).
//
// Usage:
//
//	aletop -addr 127.0.0.1:7701 -interval 1s
//	aletop -addr 127.0.0.1:7701 -n 3 -plain   # three frames, no ANSI
//
// Plain stdlib ANSI: each frame home-and-clears the screen; -plain (or a
// non-zero -n piped to a file) prints frames sequentially instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/obs"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7701", "obs HTTP address (aleserve -metrics-addr)")
	interval = flag.Duration("interval", time.Second, "refresh interval")
	frames   = flag.Int("n", 0, "stop after this many frames (0 = until interrupted)")
	plain    = flag.Bool("plain", false, "no ANSI clear: print frames sequentially")
	width    = flag.Int("width", 100, "render width in columns")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aletop:", err)
		os.Exit(1)
	}
}

func run() error {
	u := fmt.Sprintf("http://%s/stream?interval=%s&n=%d",
		*addr, url.QueryEscape(interval.String()), *frames)
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %s", u, resp.Status)
	}

	// The stream's first line is the cumulative snapshot at connect time;
	// every further line is one interval delta. Fold the deltas back into
	// the running cumulative so both views stay live without re-polling.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("stream closed before the baseline snapshot")
	}
	var cum obs.Snapshot
	if err := json.Unmarshal(sc.Bytes(), &cum); err != nil {
		return fmt.Errorf("baseline snapshot: %w", err)
	}
	show(cum, obs.Snapshot{})
	for sc.Scan() {
		var delta obs.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &delta); err != nil {
			return fmt.Errorf("delta snapshot: %w", err)
		}
		cum = accumulate(cum, delta)
		show(cum, delta)
	}
	return sc.Err()
}

// accumulate folds one interval delta into the running cumulative: the
// inverse of Snapshot.Sub for the counter and histogram planes. The
// point-in-time planes (contention, shards, exemplars) are not interval
// counts — the delta already carries the newest profile, which replaces
// the old (mirroring Sub, which keeps the newer value for the same
// reason).
func accumulate(cum, delta obs.Snapshot) obs.Snapshot {
	out := cum
	out.At = delta.At
	out.Interval = cum.Interval + delta.Interval
	for i := range out.Counts {
		out.Counts[i] += delta.Counts[i]
	}
	for h := range out.Lat {
		for i := range out.Lat[h].Buckets {
			out.Lat[h].Buckets[i] += delta.Lat[h].Buckets[i]
		}
		out.Lat[h].SumNS += delta.Lat[h].SumNS
	}
	if delta.Contention != nil {
		out.Contention = delta.Contention
	}
	if delta.Shards != nil {
		out.Shards = delta.Shards
	}
	if delta.Exemplars != nil {
		out.Exemplars = delta.Exemplars
	}
	return out
}

func show(cum, delta obs.Snapshot) {
	if !*plain {
		fmt.Print("\x1b[H\x1b[2J")
	}
	fmt.Print(RenderFrame(cum, delta, *width))
}
