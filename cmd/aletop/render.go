package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/tm"
)

// RenderFrame renders one aletop screen from the cumulative snapshot and
// the latest interval delta. It is a pure function of its inputs (no
// clock reads, no terminal queries) so the golden test can pin the layout
// byte-for-byte; main adds the ANSI clear around it.
func RenderFrame(cum, delta obs.Snapshot, width int) string {
	if width < 40 {
		width = 40
	}
	var b strings.Builder

	fmt.Fprintf(&b, "aletop — up %s  execs %s (%s/s)  elision %.1f%%  aborts %s\n",
		fmtDur(cum.Interval), fmtCount(cum.Execs()), fmtRate(delta),
		100*cum.ElisionRate(), fmtCount(cum.AbortsTotal()))
	b.WriteString(rule(width))

	renderModes(&b, cum, delta, width)
	renderAborts(&b, delta)
	renderLatency(&b, cum)
	renderShards(&b, cum, width)
	renderGranules(&b, cum)
	renderExemplars(&b, cum)
	return b.String()
}

// renderModes draws the interval's mode mix as labelled bars: where the
// last tick's executions actually finalized, the number aletop exists to
// make visible at a glance.
func renderModes(b *strings.Builder, cum, delta obs.Snapshot, width int) {
	fmt.Fprintf(b, "mode mix (last %s)\n", fmtDur(delta.Interval))
	total := delta.Execs()
	barW := width - 30
	if barW > 40 {
		barW = 40
	}
	for m := uint8(0); m < obs.NumModes; m++ {
		n := delta.Successes(m)
		share := 0.0
		if total > 0 {
			share = float64(n) / float64(total)
		}
		fill := int(share * float64(barW))
		fmt.Fprintf(b, "  %-6s %7s %5.1f%% |%-*s|\n",
			obs.ModeNames[m], fmtCount(n), 100*share, barW,
			strings.Repeat("#", fill))
	}
}

// renderAborts lists the interval's nonzero HTM abort reasons plus the
// SWOpt validation failures and lock fallbacks — the "why not elided"
// row. Silent when the interval was clean.
func renderAborts(b *strings.Builder, delta obs.Snapshot) {
	var parts []string
	for r := 1; r < tm.NumAbortReasons; r++ {
		if n := delta.Aborts(tm.AbortReason(r)); n > 0 {
			parts = append(parts, fmt.Sprintf("%s %s", tm.AbortReason(r), fmtCount(n)))
		}
	}
	if n := delta.Get(obs.CtrSWOptFail); n > 0 {
		parts = append(parts, fmt.Sprintf("swopt-fail %s", fmtCount(n)))
	}
	if n := delta.Get(obs.CtrFallback); n > 0 {
		parts = append(parts, fmt.Sprintf("fallback %s", fmtCount(n)))
	}
	if len(parts) > 0 {
		fmt.Fprintf(b, "aborts: %s\n", strings.Join(parts, "  "))
	}
}

// renderLatency shows per-mode execution percentiles from the cumulative
// histograms (interval histograms are too sparse at short ticks to give
// stable tails). Absent entirely on runs without Options.Timing.
func renderLatency(b *strings.Builder, cum obs.Snapshot) {
	if !cum.HasTiming() {
		return
	}
	b.WriteString("exec latency (cumulative)\n")
	for m := uint8(0); m < obs.NumModes; m++ {
		d := cum.Latency(obs.HistExec(m))
		if d.Count() == 0 {
			continue
		}
		fmt.Fprintf(b, "  %-6s p50 %-8s p90 %-8s p99 %-8s max %s\n",
			obs.ModeNames[m], fmtNS(d.Quantile(0.50)), fmtNS(d.Quantile(0.90)),
			fmtNS(d.Quantile(0.99)), fmtNS(d.MaxNS()))
	}
}

// renderShards draws the per-shard commit clocks as one compact row —
// skew between clocks is the sharding layer's load-balance signal.
// Single-shard domains carry no rows and print nothing.
func renderShards(b *strings.Builder, cum obs.Snapshot, width int) {
	if len(cum.Shards) == 0 {
		return
	}
	b.WriteString("shard clocks:")
	col := 0
	for _, sh := range cum.Shards {
		cell := fmt.Sprintf(" %d:%s", sh.Shard, fmtCount(sh.Clock))
		if 13+col+len(cell) > width {
			b.WriteString(" …")
			break
		}
		b.WriteString(cell)
		col += len(cell)
	}
	b.WriteByte('\n')
}

// renderGranules lists the most contended granules by attributed wasted
// time (the PR 5 contention profile), worst first.
func renderGranules(b *strings.Builder, cum obs.Snapshot) {
	rows := append([]obs.ContentionEntry(nil), cum.Contention...)
	if len(rows) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].WastedNS > rows[j].WastedNS })
	if len(rows) > 5 {
		rows = rows[:5]
	}
	b.WriteString("top granules by wasted time\n")
	for _, r := range rows {
		fmt.Fprintf(b, "  %-20s execs %-8s elision %5.1f%%  wasted %-8s payoff %s\n",
			r.Lock+"/"+r.Context, fmtCount(r.Execs), r.ElisionPct,
			fmtNS(r.WastedNS), fmtNS(r.PayoffNS))
	}
}

// renderExemplars lists the worst witnessed executions: the tail-latency
// exemplars that name the granule, mode, abort path, and (when the
// server threaded one) the client request that suffered each band.
func renderExemplars(b *strings.Builder, cum obs.Snapshot) {
	rows := append([]obs.ExemplarRow(nil), cum.Exemplars...)
	if len(rows) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].LatNS > rows[j].LatNS })
	if len(rows) > 5 {
		rows = rows[:5]
	}
	b.WriteString("tail exemplars\n")
	for _, r := range rows {
		fmt.Fprintf(b, "  %-8s %-10s %-6s %s", fmtNS(r.LatNS), r.Hist, r.Mode, r.Granule)
		if r.Attempts > 1 {
			fmt.Fprintf(b, " attempts=%d", r.Attempts)
		}
		if len(r.Aborts) > 0 {
			fmt.Fprintf(b, " aborts=%s", strings.Join(r.Aborts, ","))
		}
		if r.WastedNS > 0 {
			fmt.Fprintf(b, " wasted=%s", fmtNS(r.WastedNS))
		}
		if r.RequestID != 0 {
			fmt.Fprintf(b, " req=%d", r.RequestID)
		}
		b.WriteByte('\n')
	}
}

func rule(width int) string { return strings.Repeat("—", width/2) + "\n" }

// fmtRate renders the interval's execution rate; "-" before the first
// delta arrives (a zero interval has no rate).
func fmtRate(delta obs.Snapshot) string {
	if delta.Interval <= 0 {
		return "-"
	}
	return fmtCount(uint64(float64(delta.Execs()) / delta.Interval.Seconds()))
}

// fmtCount renders a counter with k/M suffixes past 4 digits.
func fmtCount(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// fmtNS renders a nanosecond duration at the natural unit.
func fmtNS(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%s%.2fs", neg, float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%s%.2fms", neg, float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%s%.1fµs", neg, float64(ns)/1e3)
	default:
		return fmt.Sprintf("%s%dns", neg, ns)
	}
}

// fmtDur rounds a wall interval for the header.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
