// Command aleload drives an aleserve instance with an open-loop
// Poisson-arrival workload and reports coordinated-omission-safe
// latency percentiles.
//
// Open loop means arrivals follow a fixed schedule that does not slow
// down when the server does; each reply is charged from its *scheduled*
// send time, so server-side queueing that a closed-loop client would
// silently absorb shows up in p99/p99.9 (docs/ALESERVE.md discusses the
// distinction).
//
// Usage:
//
//	aleload -addr 127.0.0.1:7700 -rate 5000 -duration 10s -conns 4 \
//	        -mix get=80,set=15,del=3,incr=2 -json load.json
//
// The -json file is tagged aleload-result/v1 and renders with
// alereport -in.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/load"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7700", "aleserve KV address")
	conns    = flag.Int("conns", 4, "client connections (schedule splits across them)")
	rate     = flag.Float64("rate", 1000, "total offered ops/sec (Poisson arrivals)")
	duration = flag.Duration("duration", 10*time.Second, "measured run length")
	warmup   = flag.Duration("warmup", 1*time.Second, "trim ops scheduled before this offset")
	seed     = flag.Uint64("seed", 1, "workload seed (fixes the op stream byte-for-byte)")
	keys     = flag.Uint64("keys", 4096, "keyspace size (keys 1..N)")
	mixFlag  = flag.String("mix", "", "verb mix, e.g. get=80,set=15,del=3,incr=2 (default mix when empty)")
	valSize  = flag.Int("val-size", 0, "send SETs as PUTs carrying this many payload bytes (0 = plain SET)")
	jsonPath = flag.String("json", "", "write the aleload-result/v1 JSON here")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aleload:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := load.Config{
		Addr:       *addr,
		Conns:      *conns,
		RatePerSec: *rate,
		Duration:   *duration,
		Warmup:     *warmup,
		Seed:       *seed,
		Keys:       *keys,
		ValSize:    *valSize,
	}
	if *mixFlag != "" {
		m, err := load.ParseMix(*mixFlag)
		if err != nil {
			return err
		}
		cfg.Mix = m
	}
	out, err := load.Run(cfg)
	if err != nil {
		return err
	}
	if err := out.Result.WriteTable(os.Stdout); err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := out.Result.WriteJSON(f); err != nil {
			return err
		}
	}
	return nil
}
