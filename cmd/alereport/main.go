// Command alereport demonstrates the ALE library's statistics and
// profiling reports (paper section 3.4) on their own: it runs a small
// lock-heavy application with the critical sections merely *integrated*
// with ALE (the Instrumented configuration — only the lock is ever used)
// and prints the per-(lock, context) report.
//
// This is the paper's "even without using the HTM or SWOpt modes, ALE's
// reports provide valuable insights to guide optimization efforts" use
// case: the report shows which locks and contexts dominate, so a developer
// knows where adding a SWOpt path or enabling HTM would pay off.
//
// With -in it instead analyzes a saved metrics file: an alebench CSV
// export (WriteCSV) summarized per (lock, context), obs snapshot JSON
// (one object, an array, or JSON-lines — e.g. periodic saves of
// alebench's /snapshot endpoint) rendered as interval elision-rate
// deltas, an `alebench micro -bench-json` report rendered as the
// microbenchmark table, or an `aleload -json` open-loop result
// (aleload-result/v1) rendered as the latency summary.
//
// The cross-run modes turn the committed BENCH_N.json series into
// checked trends (internal/trend):
//
//	alereport -compare old.json new.json
//	    judge new against old under a noise model (robust per-benchmark
//	    statistics over repeated samples; v1 single-sample files get a
//	    wide default bound). Exit 0 = clean, 1 = regression past noise,
//	    2 = malformed input. -threshold overrides the bound with a fixed
//	    ±pct band; -json emits the machine-readable comparison.
//
//	alereport -trend 'BENCH_*.json'
//	    render every matching report (naturally ordered) as a markdown
//	    per-benchmark trajectory report — the CI artifact.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

func main() {
	threads := flag.Int("threads", min(4, runtime.GOMAXPROCS(0)), "worker goroutines")
	ops := flag.Int("ops", 50000, "operations per worker")
	timing := flag.Bool("timing", false,
		"enable the timing layer for the instrumented run: latency percentiles and the contention profile")
	in := flag.String("in", "", "analyze a saved metrics file instead of running: alebench CSV export or obs snapshot JSON")
	compare := flag.Bool("compare", false,
		"compare two BENCH reports (old.json new.json as arguments); exit 0 clean, 1 regression, 2 malformed")
	threshold := flag.Float64("threshold", 0,
		"with -compare: replace the statistical noise bound with a fixed ±pct band (0 = use the noise model)")
	jsonOut := flag.Bool("json", false,
		"with -compare: emit the machine-readable comparison JSON instead of the table")
	trendGlob := flag.String("trend", "",
		"render every BENCH report matching this glob (e.g. 'BENCH_*.json') as a markdown trend report")
	flag.Parse()
	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold, *jsonOut, os.Stdout, os.Stderr))
	}
	var err error
	switch {
	case *trendGlob != "":
		err = runTrend(*trendGlob, os.Stdout)
	case *in != "":
		err = analyzeFile(*in, os.Stdout)
	default:
		err = run(*threads, *ops, *timing)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "alereport:", err)
		os.Exit(1)
	}
}

// analyzeFile dispatches on the file's first non-space byte: '{' or '['
// mean JSON — a BENCH microbenchmark report (detected by its schema
// field) or obs snapshot JSON — anything else is treated as WriteCSV
// output.
func analyzeFile(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
		rep, err := bench.ParseMicro(data)
		if err == nil {
			return writeMicroTable(w, rep)
		}
		if !errors.Is(err, bench.ErrNotMicroSchema) {
			// A BENCH report, but an invalid one (e.g. duplicate
			// benchmark names): surface the located error instead of
			// falling through to the snapshot parser's noise.
			return fmt.Errorf("%s: %w", path, err)
		}
		if res, err := load.ParseResult(data); err == nil {
			return res.WriteTable(w)
		} else if !errors.Is(err, load.ErrNotLoadSchema) {
			return fmt.Errorf("%s: %w", path, err)
		}
		if d, err := obs.ParseFlight(data); err == nil {
			return writeFlightReport(w, d)
		} else if !errors.Is(err, obs.ErrNotFlightSchema) {
			// Non-sentinel means the flight schema matched but the body
			// didn't: a located error beats the snapshot parser's noise.
			return fmt.Errorf("%s: %w", path, err)
		}
		snaps, err := obs.ParseSnapshots(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return writeSnapshotDeltas(w, snaps)
	}
	return summarizeCSV(w, data)
}

// writeMicroTable renders a BENCH microbenchmark report (the
// alebench-microbench/v1 or /v2 schema emitted by `alebench micro
// -bench-json`). v2 rows show the sample count; entries without a
// defined elision rate (substrate, granule lookup) render "-".
func writeMicroTable(w io.Writer, rep bench.MicroReport) error {
	fmt.Fprintf(w, "microbenchmark report (%s, GOMAXPROCS=%d", rep.Schema, rep.GoMaxProcs)
	if e := rep.Env; e != nil {
		fmt.Fprintf(w, ", %s %s/%s", e.GoVersion, e.GOOS, e.GOARCH)
		if e.GitRev != "" {
			fmt.Fprintf(w, ", git %s", e.GitRev)
		}
	}
	fmt.Fprintln(w, ")")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\tsamples\tns/op\tallocs/op\tops/s\telision%\t")
	for _, b := range rep.Benchmarks {
		el := "-"
		if b.ElisionPct != nil {
			el = fmt.Sprintf("%.1f", *b.ElisionPct)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.0f\t%s\t\n",
			b.Name, len(b.Samples()), b.NsPerOp, b.AllocsPerOp, b.OpsPerSec, el)
	}
	return tw.Flush()
}

// writeSnapshotDeltas renders a cumulative snapshot series as per-interval
// deltas: how the elision rate and throughput moved between scrapes. This
// is where an adaptive policy's learning shows up — early lock-dominated
// intervals giving way to elided steady state.
func writeSnapshotDeltas(w io.Writer, snaps []obs.Snapshot) error {
	if len(snaps) == 0 {
		return fmt.Errorf("no snapshots in input")
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "interval\tspan\texecs\texecs/s\telision%\taborts\tswopt-fails\t")
	row := func(label string, d obs.Snapshot) {
		span := "-"
		rate := "-"
		if d.Interval > 0 {
			span = d.Interval.Round(10 * time.Millisecond).String()
			rate = fmt.Sprintf("%.0f", float64(d.Execs())/d.Interval.Seconds())
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%.1f\t%d\t%d\t\n",
			label, span, d.Execs(), rate, 100*d.ElisionRate(),
			d.AbortsTotal(), d.Get(obs.CtrSWOptFail))
	}
	if len(snaps) == 1 {
		row("total", snaps[0])
		if err := tw.Flush(); err != nil {
			return err
		}
		return writeTimingTables(w, snaps[0])
	}
	for i := 1; i < len(snaps); i++ {
		row(fmt.Sprintf("#%d", i), snaps[i].Sub(snaps[i-1]))
	}
	last := snaps[len(snaps)-1]
	total := last.Sub(snaps[0])
	total.Interval = last.At.Sub(snaps[0].At)
	row("total", total)
	if err := tw.Flush(); err != nil {
		return err
	}
	// Latency and contention are rendered from the final cumulative
	// snapshot — histograms merge monotonically, so the last scrape holds
	// the whole run.
	return writeTimingTables(w, last)
}

// writeFlightReport renders an ale-flight/v1 black-box dump: the dump
// header, the anomaly log, the per-tick frame timeline (what the window
// watched happen), the window's abort breakdown, the top-blamed granules
// from the exemplar table, and the cumulative timing tables.
func writeFlightReport(w io.Writer, d obs.FlightDump) error {
	fmt.Fprintf(w, "flight recorder dump (%s): reason %q, %s window at %s ticks, %d frames\n",
		d.Schema, d.Reason,
		time.Duration(d.WindowS*float64(time.Second)).Round(time.Millisecond),
		time.Duration(d.TickS*float64(time.Second)).Round(time.Millisecond),
		len(d.Frames))
	if d.DroppedTraceEvents > 0 {
		fmt.Fprintf(w, "warning: %d engine-trace events were dropped before this dump\n",
			d.DroppedTraceEvents)
	}
	if len(d.Anomalies) > 0 {
		fmt.Fprintln(w, "\nanomaly triggers")
		for _, a := range d.Anomalies {
			fmt.Fprintf(w, "  %s  %s\n",
				time.Unix(0, a.UnixNano).UTC().Format("15:04:05.000"), a.Reason)
		}
	}

	if len(d.Frames) > 0 {
		fmt.Fprintln(w, "\nwindow timeline (per-tick deltas, oldest first)")
		tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "frame\tspan\texecs\texecs/s\telision%\taborts\tswopt-fails\tfaults\t")
		for i, fr := range d.Frames {
			span, rate := "-", "-"
			if fr.Interval > 0 {
				span = fr.Interval.Round(10 * time.Millisecond).String()
				rate = fmt.Sprintf("%.0f", float64(fr.Execs())/fr.Interval.Seconds())
			}
			fmt.Fprintf(tw, "#%d\t%s\t%d\t%s\t%.1f\t%d\t%d\t%d\t\n",
				i+1, span, fr.Execs(), rate, 100*fr.ElisionRate(),
				fr.AbortsTotal(), fr.Get(obs.CtrSWOptFail), fr.FaultsTotal())
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if aborts := d.AbortsByReason(); len(aborts) > 0 {
		fmt.Fprintln(w, "\nwindow aborts by reason")
		for r := 1; r < tm.NumAbortReasons; r++ {
			name := tm.AbortReason(r).String()
			if n := aborts[name]; n > 0 {
				fmt.Fprintf(w, "  %-12s %d\n", name, n)
			}
		}
	}

	if top := d.TopBlamedGranules(10); len(top) > 0 {
		fmt.Fprintln(w, "\ntop blamed granules (worst witnessed exec latency)")
		tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "lock\tgranule\tlatency\tmode\tattempts\taborts\twasted\trequest\t")
		for _, r := range top {
			aborts, req := "-", "-"
			if len(r.Aborts) > 0 {
				aborts = strings.Join(r.Aborts, ",")
			}
			if r.RequestID != 0 {
				req = fmt.Sprintf("%d", r.RequestID)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t\n",
				r.Lock, r.Granule, fmtNS(r.LatNS), r.Mode, r.Attempts,
				aborts, fmtNS(r.WastedNS), req)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return writeTimingTables(w, d.Cumulative)
}

// writeTimingTables renders the timing layer's two views from a snapshot:
// per-histogram latency percentiles and the top contended granules. A
// snapshot without timing data (Options.Timing off, or an old export)
// renders nothing.
func writeTimingTables(w io.Writer, s obs.Snapshot) error {
	if !s.HasTiming() {
		return nil
	}
	fmt.Fprintln(w, "\nlatency (log-bucketed; percentiles are conservative upper bounds)")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "histogram\tcount\tmean\tp50\tp90\tp99\tmax\t")
	for h := 0; h < obs.NumHists; h++ {
		d := s.Lat[h]
		if d.Count() == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t\n",
			obs.HistNames[h], d.Count(), fmtNS(d.MeanNS()),
			fmtNS(d.Quantile(0.50)), fmtNS(d.Quantile(0.90)),
			fmtNS(d.Quantile(0.99)), fmtNS(d.MaxNS()))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(s.Contention) == 0 {
		return nil
	}
	fmt.Fprintln(w, "\ncontention (granules ranked by wasted time)")
	tw = tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "lock\tcontext\texecs\telision%\tabort-work\tswopt-retry\tlock-wait\twasted\tpayoff\t")
	for _, e := range s.Contention {
		ctx := e.Context
		if ctx == "" {
			ctx = "(root)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%s\t%s\t%s\t%s\t%s\t\n",
			e.Lock, ctx, e.Execs, e.ElisionPct, fmtNS(e.AbortWorkNS),
			fmtNS(e.SWOptRetryNS), fmtNS(e.LockWaitNS), fmtNS(e.WastedNS),
			fmtNS(e.PayoffNS))
	}
	return tw.Flush()
}

// fmtNS renders a nanosecond figure as a compact duration for tables.
func fmtNS(ns int64) string {
	if ns == 0 {
		return "0"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// summarizeCSV renders a WriteCSV export per (lock, context): execution
// counts and the realized elision rate of each critical section.
func summarizeCSV(w io.Writer, data []byte) error {
	rows, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
	if err != nil {
		return err
	}
	if len(rows) < 1 {
		return fmt.Errorf("empty CSV input")
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, need := range []string{"lock", "context", "execs", "htm_successes", "swopt_successes", "lock_successes"} {
		if _, ok := col[need]; !ok {
			return fmt.Errorf("CSV input missing column %q (not a WriteCSV export?)", need)
		}
	}
	var parseErr error
	u := func(row []string, name string) uint64 {
		c := col[name]
		if c >= len(row) {
			if parseErr == nil {
				parseErr = fmt.Errorf("row is missing column %q", name)
			}
			return 0
		}
		v, err := strconv.ParseUint(row[c], 10, 64)
		if err != nil && parseErr == nil {
			parseErr = fmt.Errorf("column %q: %w", name, err)
		}
		return v
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "lock\tcontext\texecs\thtm\tswopt\tlock\telision%")
	var totExecs, totElided uint64
	for i, row := range rows[1:] {
		execs := u(row, "execs")
		htm, sw, lk := u(row, "htm_successes"), u(row, "swopt_successes"), u(row, "lock_successes")
		if parseErr != nil {
			return fmt.Errorf("CSV line %d: %w", i+2, parseErr)
		}
		ctx := row[col["context"]]
		if ctx == "" {
			ctx = "(root)"
		}
		rate := 0.0
		if execs > 0 {
			rate = 100 * float64(htm+sw) / float64(execs)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.1f\n",
			row[col["lock"]], ctx, execs, htm, sw, lk, rate)
		totExecs += execs
		totElided += htm + sw
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if totExecs > 0 {
		fmt.Fprintf(w, "overall: %d execs, %.1f%% elided\n",
			totExecs, 100*float64(totElided)/float64(totExecs))
	}
	return nil
}

func run(threads, ops int, timing bool) error {
	plat := platform.Haswell()
	opts := core.DefaultOptions()
	var collector *obs.Collector
	if timing {
		collector = obs.New()
		opts.Obs = collector
		opts.Timing = true
	}
	rt := core.NewRuntimeOpts(tm.NewDomain(plat.Profile), opts)
	m := hashmap.New(rt, "sessions", hashmap.Config{Buckets: 512, Capacity: 1 << 15, MarkerStripes: 1},
		core.NewLockOnly())

	// Two call sites share the map's critical sections; explicit scopes
	// (the paper's BEGIN_SCOPE idiom) let the report attribute cost to
	// each caller separately.
	loginScope := core.NewScope("handleLogin")
	statsScope := core.NewScope("renderStats")

	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := m.NewHandle()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < ops; i++ {
				key := rng.Uint64n(2048) + 1
				if rng.Intn(10) < 3 {
					// handleLogin: mutates session state.
					h.Thread().BeginScope(loginScope)
					_, err := h.Insert(key, key)
					h.Thread().EndScope()
					if err != nil {
						errCh <- err
						return
					}
				} else {
					// renderStats: read-mostly.
					h.Thread().BeginScope(statsScope)
					_, _, err := h.Get(key)
					h.Thread().EndScope()
					if err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	fmt.Println("Instrumented run complete. The report below shows where the lock's")
	fmt.Println("time goes per calling context — renderStats dominates and is read-only,")
	fmt.Println("so it is the natural first candidate for a SWOpt path:")
	fmt.Println()
	if err := rt.WriteReport(os.Stdout); err != nil {
		return err
	}
	if !timing {
		return nil
	}
	// With -timing the collector's histograms and the runtime's granule
	// attribution turn the same run into the section 3.4 profiling view:
	// not just *where* the lock is used, but how long executions take and
	// where blocked time goes.
	if err := writeTimingTables(os.Stdout, collector.Snapshot()); err != nil {
		return err
	}
	fmt.Println()
	return rt.WriteContentionReport(os.Stdout, 10)
}
