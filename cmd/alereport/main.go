// Command alereport demonstrates the ALE library's statistics and
// profiling reports (paper section 3.4) on their own: it runs a small
// lock-heavy application with the critical sections merely *integrated*
// with ALE (the Instrumented configuration — only the lock is ever used)
// and prints the per-(lock, context) report.
//
// This is the paper's "even without using the HTM or SWOpt modes, ALE's
// reports provide valuable insights to guide optimization efforts" use
// case: the report shows which locks and contexts dominate, so a developer
// knows where adding a SWOpt path or enabling HTM would pay off.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

func main() {
	threads := flag.Int("threads", min(4, runtime.GOMAXPROCS(0)), "worker goroutines")
	ops := flag.Int("ops", 50000, "operations per worker")
	flag.Parse()
	if err := run(*threads, *ops); err != nil {
		fmt.Fprintln(os.Stderr, "alereport:", err)
		os.Exit(1)
	}
}

func run(threads, ops int) error {
	plat := platform.Haswell()
	rt := core.NewRuntime(tm.NewDomain(plat.Profile))
	m := hashmap.New(rt, "sessions", hashmap.Config{Buckets: 512, Capacity: 1 << 15, MarkerStripes: 1},
		core.NewLockOnly())

	// Two call sites share the map's critical sections; explicit scopes
	// (the paper's BEGIN_SCOPE idiom) let the report attribute cost to
	// each caller separately.
	loginScope := core.NewScope("handleLogin")
	statsScope := core.NewScope("renderStats")

	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := m.NewHandle()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < ops; i++ {
				key := rng.Uint64n(2048) + 1
				if rng.Intn(10) < 3 {
					// handleLogin: mutates session state.
					h.Thread().BeginScope(loginScope)
					_, err := h.Insert(key, key)
					h.Thread().EndScope()
					if err != nil {
						errCh <- err
						return
					}
				} else {
					// renderStats: read-mostly.
					h.Thread().BeginScope(statsScope)
					_, _, err := h.Get(key)
					h.Thread().EndScope()
					if err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	fmt.Println("Instrumented run complete. The report below shows where the lock's")
	fmt.Println("time goes per calling context — renderStats dominates and is read-only,")
	fmt.Println("so it is the natural first candidate for a SWOpt path:")
	fmt.Println()
	return rt.WriteReport(os.Stdout)
}
