package main

// The cross-run half of alereport: -compare judges one BENCH report
// against another under internal/trend's noise model (the perf gate CI
// and `make bench-gate` run), and -trend renders the whole committed
// BENCH_N.json series as a markdown trajectory report. File IO and exit
// codes live here; all statistics live in internal/trend.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/bench"
	"repro/internal/trend"
)

// Exit codes of the -compare mode, stable for CI and Makefile use.
const (
	exitClean      = 0 // no regression past the noise bound
	exitRegression = 1 // at least one benchmark regressed
	exitMalformed  = 2 // unreadable/invalid input or usage error
)

// microToRun lifts a parsed BENCH report into the trend package's
// neutral Run form: every benchmark's sample series (v1 files collapse
// to one sample) plus the environment fingerprint as a flat map.
func microToRun(label string, rep bench.MicroReport) trend.Run {
	run := trend.Run{Label: label, Env: map[string]string{}}
	if rep.GoMaxProcs > 0 {
		run.Env["go_max_procs"] = strconv.Itoa(rep.GoMaxProcs)
	}
	if e := rep.Env; e != nil {
		run.Env["go_version"] = e.GoVersion
		run.Env["goos"] = e.GOOS
		run.Env["goarch"] = e.GOARCH
		run.Env["cpu_model"] = e.CPUModel
		run.Env["git_rev"] = e.GitRev
		run.Env["time"] = e.Time
	}
	for _, b := range rep.Benchmarks {
		run.Benchmarks = append(run.Benchmarks, trend.Benchmark{
			Name:        b.Name,
			SamplesNS:   b.Samples(),
			AllocsPerOp: b.AllocsPerOp,
		})
	}
	return run
}

// loadMicroRun reads and parses one BENCH report file.
func loadMicroRun(path string) (trend.Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return trend.Run{}, err
	}
	rep, err := bench.ParseMicro(data)
	if err != nil {
		return trend.Run{}, fmt.Errorf("%s: %w", path, err)
	}
	return microToRun(filepath.Base(path), rep), nil
}

// runCompare implements `alereport -compare old.json new.json`,
// returning the process exit code: 0 clean, 1 regression, 2 malformed
// input. thresholdPct > 0 replaces the statistical noise bound; jsonOut
// selects the machine-readable Comparison encoding over the human table.
func runCompare(args []string, thresholdPct float64, jsonOut bool, w, errw io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(errw, "alereport: -compare needs exactly two files: old.json new.json")
		return exitMalformed
	}
	oldRun, err := loadMicroRun(args[0])
	if err != nil {
		fmt.Fprintln(errw, "alereport:", err)
		return exitMalformed
	}
	newRun, err := loadMicroRun(args[1])
	if err != nil {
		fmt.Fprintln(errw, "alereport:", err)
		return exitMalformed
	}
	cmp := trend.Compare(oldRun, newRun, trend.Options{ThresholdPct: thresholdPct})
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			fmt.Fprintln(errw, "alereport:", err)
			return exitMalformed
		}
	} else {
		trend.WriteCompareTable(w, cmp)
	}
	if cmp.HasRegression() {
		return exitRegression
	}
	return exitClean
}

// runTrend implements `alereport -trend 'BENCH_*.json'`: every matching
// report, ordered naturally (BENCH_9 before BENCH_10), rendered as the
// markdown trend report CI uploads as an artifact.
func runTrend(pattern string, w io.Writer) error {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return fmt.Errorf("bad -trend pattern %q: %w", pattern, err)
	}
	if len(paths) == 0 {
		return fmt.Errorf("-trend pattern %q matches no files", pattern)
	}
	sort.Slice(paths, func(i, j int) bool { return naturalLess(paths[i], paths[j]) })
	runs := make([]trend.Run, 0, len(paths))
	for _, p := range paths {
		run, err := loadMicroRun(p)
		if err != nil {
			return err
		}
		runs = append(runs, run)
	}
	return trend.WriteMarkdown(w, runs, trend.Options{})
}

// naturalLess orders strings with embedded integers compared
// numerically, so the committed series reads BENCH_4 < BENCH_5 < ... <
// BENCH_10 instead of the lexical BENCH_10 < BENCH_4.
func naturalLess(a, b string) bool {
	for len(a) > 0 && len(b) > 0 {
		ad, an := leadingInt(a)
		bd, bn := leadingInt(b)
		if an > 0 && bn > 0 {
			if ad != bd {
				return ad < bd
			}
			a, b = a[an:], b[bn:]
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

// leadingInt parses the digit run at the start of s, returning its value
// and length (0 when s does not start with a digit). Values are capped
// well below overflow by the 18-digit cut.
func leadingInt(s string) (val int64, n int) {
	for n < len(s) && n < 18 && s[n] >= '0' && s[n] <= '9' {
		val = val*10 + int64(s[n]-'0')
		n++
	}
	return val, n
}
