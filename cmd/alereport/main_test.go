package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tm"
)

func TestRunSmoke(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := run(2, 2000, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(2, 2000, true); err != nil {
		t.Fatalf("run -timing: %v", err)
	}
}

// TestAnalyzeSnapshotTiming: a snapshot carrying timing data renders the
// latency-percentile and contention tables; one without renders neither.
func TestAnalyzeSnapshotTiming(t *testing.T) {
	var s obs.Snapshot
	s.At = time.Unix(1700000000, 0)
	s.Counts[obs.CtrSuccessLock] = 10
	s.Lat[obs.HistExecLock].Buckets[8] = 10
	s.Lat[obs.HistExecLock].SumNS = 10 * 9000
	s.Contention = []obs.ContentionEntry{{
		Lock: "tbl", Context: "get", Execs: 10,
		AbortWorkNS: 5000, WastedNS: 5000, PayoffNS: -5000,
	}}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := analyzeFile(writeTemp(t, "timed.json", string(b)), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"latency", obs.HistNames[obs.HistExecLock], "p99", "contention", "tbl", "get"} {
		if !strings.Contains(got, want) {
			t.Errorf("timed snapshot output missing %q:\n%s", want, got)
		}
	}

	// Timing-off snapshot: no timing tables.
	t0 := time.Unix(1700000000, 0)
	path := writeTemp(t, "plain.json", snapLine(t, t0, 0, 5, 0, 0))
	out.Reset()
	if err := analyzeFile(path, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "latency") || strings.Contains(out.String(), "contention") {
		t.Errorf("untimed snapshot rendered timing tables:\n%s", out.String())
	}
}

// writeTemp writes content to a file in the test's temp dir.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// snapLine builds one JSON-lines snapshot with the given cumulative
// per-mode successes at the given offset from t0.
func snapLine(t *testing.T, t0 time.Time, offset time.Duration, lock, htm, swopt uint64) string {
	t.Helper()
	var s obs.Snapshot
	s.At = t0.Add(offset)
	s.Counts[obs.CtrSuccessLock] = lock
	s.Counts[obs.CtrSuccessHTM] = htm
	s.Counts[obs.CtrSuccessSWOpt] = swopt
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAnalyzeSnapshotJSON: a saved /snapshot series renders as interval
// deltas — the first interval is lock-dominated (learning), the second
// fully elided, and the rates reflect only each interval's motion, not the
// cumulative totals.
func TestAnalyzeSnapshotJSON(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	lines := strings.Join([]string{
		snapLine(t, t0, 0, 0, 0, 0),
		snapLine(t, t0, time.Second, 1000, 0, 0),      // interval 1: all lock
		snapLine(t, t0, 2*time.Second, 1000, 2000, 0), // interval 2: all HTM
	}, "\n") + "\n"
	path := writeTemp(t, "snaps.jsonl", lines)
	var out strings.Builder
	if err := analyzeFile(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"interval", "#1", "#2", "total", "0.0", "100.0", "1s"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The total row covers both intervals: 3000 execs, 2/3 elided.
	if !strings.Contains(got, "3000") || !strings.Contains(got, "66.7") {
		t.Errorf("total row wrong:\n%s", got)
	}
}

// TestAnalyzeSnapshotArray: the same input as a JSON array parses too.
func TestAnalyzeSnapshotArray(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	arr := "[" + snapLine(t, t0, 0, 0, 0, 0) + "," + snapLine(t, t0, time.Second, 500, 500, 0) + "]"
	path := writeTemp(t, "snaps.json", arr)
	var out strings.Builder
	if err := analyzeFile(path, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "50.0") {
		t.Errorf("expected 50%% elision interval:\n%s", out.String())
	}
}

// TestAnalyzeFlightDump: an ale-flight/v1 dump renders the black-box
// report — header, anomaly log, per-tick timeline, window abort
// breakdown, blamed-granule table, and the cumulative timing tables.
func TestAnalyzeFlightDump(t *testing.T) {
	c := obs.New()
	sh := c.NewShard()
	lat := c.NewLatShard()
	clock := time.Unix(1700000000, 0)
	fr := obs.NewFlight(c, obs.FlightConfig{
		Window:         10 * time.Second,
		Tick:           time.Second,
		AbortStormRate: 1,
		Clock:          func() time.Time { return clock },
	})
	sh.Add(obs.CtrSuccessHTM)
	sh.Add(obs.CtrAbort(tm.AbortConflict))
	lat.Record(obs.HistExecHTM, 9000)
	c.Exemplars().SetMinLatency(1)
	c.Exemplars().Observe(obs.HistExecHTM, obs.Exemplar{
		LatNS: 9000, Lock: "kv", Granule: "bucket-9", Mode: 1, Attempts: 2,
		AbortMask: 1 << uint(tm.AbortConflict), RequestID: 77,
	})
	fr.Tick()
	var sb strings.Builder
	if err := fr.Dump(&sb, "test-dump"); err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, "flight.json", sb.String())
	var out strings.Builder
	if err := analyzeFile(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"flight recorder dump", `"test-dump"`, "1 frames",
		"anomaly triggers", "abort-storm",
		"window timeline", "#1",
		"window aborts by reason", "conflict",
		"top blamed granules", "kv", "bucket-9", "77",
		"latency", "exec_htm",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("flight report missing %q:\n%s", want, got)
		}
	}

	// A flight-schema document with a broken body is a located error, not
	// a fall-through to the snapshot parser.
	bad := writeTemp(t, "bad-flight.json", `{"schema":"ale-flight/v1","frames":"bogus"}`)
	if err := analyzeFile(bad, &out); err == nil {
		t.Error("malformed flight dump accepted")
	}
}

// TestAnalyzeCSV: a WriteCSV export summarizes per (lock, context) with
// realized elision rates and an overall roll-up.
func TestAnalyzeCSV(t *testing.T) {
	csvIn := strings.Join([]string{
		"lock,policy,context,execs,htm_attempts,htm_successes,swopt_attempts,swopt_successes,lock_successes,mean_htm_ns,mean_swopt_ns,mean_lock_ns,lockheld_aborts,aborts_conflict,aborts_capacity,aborts_spurious,aborts_explicit,aborts_lock-held,aborts_disabled,aborts_nesting",
		"tbl,Static-All-10:10,get,1000,900,800,100,100,100,120,340,900,0,40,0,3,0,5,0,0",
		"tbl,Static-All-10:10,,500,0,0,400,400,100,0,250,800,0,0,0,0,0,0,0,0",
	}, "\n") + "\n"
	path := writeTemp(t, "export.csv", csvIn)
	var out strings.Builder
	if err := analyzeFile(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"tbl", "get", "(root)", "90.0", "80.0", "overall: 1500 execs, 86.7% elided"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestAnalyzeCSVMalformedNumbers: a row whose numeric column does not
// parse must fail with a located error, not silently render as zero
// (the parse error used to be discarded, so garbage input exited 0).
func TestAnalyzeCSVMalformedNumbers(t *testing.T) {
	header := "lock,context,execs,htm_successes,swopt_successes,lock_successes"
	for name, row := range map[string]string{
		"non-numeric": "tbl,get,not-a-number,1,2,3",
		"negative":    "tbl,get,-5,1,2,3",
		"float":       "tbl,get,1.5,1,2,3",
	} {
		var out strings.Builder
		in := header + "\n" + row + "\n"
		err := analyzeFile(writeTemp(t, "bad.csv", in), &out)
		if err == nil {
			t.Errorf("%s: malformed CSV accepted:\n%s", name, out.String())
			continue
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: error does not locate the bad row: %v", name, err)
		}
	}
	// A truncated row (fewer fields than the header) is rejected by the
	// csv reader itself; a well-formed row must still parse after the fix.
	var out strings.Builder
	good := header + "\n" + "tbl,get,10,4,3,3\n"
	if err := analyzeFile(writeTemp(t, "good.csv", good), &out); err != nil {
		t.Errorf("well-formed CSV rejected after fix: %v", err)
	}
}

// TestAnalyzeBadInput: non-export CSV and empty files fail loudly instead
// of printing an empty table.
func TestAnalyzeBadInput(t *testing.T) {
	var out strings.Builder
	if err := analyzeFile(writeTemp(t, "junk.csv", "a,b\n1,2\n"), &out); err == nil {
		t.Error("CSV without export columns accepted")
	}
	if err := analyzeFile(writeTemp(t, "empty.json", "[]"), &out); err == nil {
		t.Error("empty snapshot array accepted")
	}
	if err := analyzeFile(filepath.Join(t.TempDir(), "missing"), &out); err == nil {
		t.Error("missing file accepted")
	}
}
