package main

import (
	"os"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := run(2, 2000); err != nil {
		t.Fatalf("run: %v", err)
	}
}
