package main

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

// FuzzAnalyzeInput throws arbitrary bytes at the -in analysis path —
// the same dispatch analyzeFile performs, minus the file read. Saved
// metrics files come from outside the process (hand-edited exports,
// truncated scrapes, foreign CSVs), so the only contract is: return an
// error or a rendering, never panic, for any input whatsoever.
func FuzzAnalyzeInput(f *testing.F) {
	const hdr = "lock,context,execs,htm_successes,swopt_successes,lock_successes"
	f.Add([]byte(hdr + "\ntbl,get,10,4,3,3\n"))
	f.Add([]byte(hdr + "\n"))
	f.Add([]byte(hdr + "\ntbl,,18446744073709551615,1,2,3\n"))
	f.Add([]byte(hdr + "\ntbl,x,-1,NaN,Inf,1e30\n"))
	f.Add([]byte("lock,context\na,b\n"))
	f.Add([]byte("\"unterminated"))
	f.Add([]byte(""))
	f.Add([]byte("   \n\t"))
	f.Add([]byte(`{"at":"2026-08-05T00:00:00Z"}`))
	f.Add([]byte(`[{"counters":{"execs":"not-a-number"}}]`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"schema":"alebench-microbench/v2","benchmarks":[{"name":"a","samples_ns_per_op":[1,2]}]}`))
	f.Add([]byte(`{"schema":"alebench-microbench/v2","benchmarks":[{"name":"a"},{"name":"a"}]}`))
	f.Add([]byte(`{"schema":"alebench-microbench/v1","benchmarks":[{"name":"a","ns_per_op":-1e308}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\n' || r == '\r'
		})
		if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
			rep, err := bench.ParseMicro(data)
			if err == nil {
				_ = writeMicroTable(io.Discard, rep)
				return
			}
			if !errors.Is(err, bench.ErrNotMicroSchema) {
				return // a located BENCH error, surfaced not rendered
			}
			snaps, err := obs.ParseSnapshots(data)
			if err != nil {
				return
			}
			_ = writeSnapshotDeltas(io.Discard, snaps)
			return
		}
		_ = summarizeCSV(io.Discard, data)
	})
}
