package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
)

// FuzzAnalyzeInput throws arbitrary bytes at the -in analysis path —
// the same dispatch analyzeFile performs, minus the file read. Saved
// metrics files come from outside the process (hand-edited exports,
// truncated scrapes, foreign CSVs), so the only contract is: return an
// error or a rendering, never panic, for any input whatsoever.
func FuzzAnalyzeInput(f *testing.F) {
	const hdr = "lock,context,execs,htm_successes,swopt_successes,lock_successes"
	f.Add([]byte(hdr + "\ntbl,get,10,4,3,3\n"))
	f.Add([]byte(hdr + "\n"))
	f.Add([]byte(hdr + "\ntbl,,18446744073709551615,1,2,3\n"))
	f.Add([]byte(hdr + "\ntbl,x,-1,NaN,Inf,1e30\n"))
	f.Add([]byte("lock,context\na,b\n"))
	f.Add([]byte("\"unterminated"))
	f.Add([]byte(""))
	f.Add([]byte("   \n\t"))
	f.Add([]byte(`{"at":"2026-08-05T00:00:00Z"}`))
	f.Add([]byte(`[{"counters":{"execs":"not-a-number"}}]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\n' || r == '\r'
		})
		if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
			snaps, err := obs.ParseSnapshots(data)
			if err != nil {
				return
			}
			_ = writeSnapshotDeltas(io.Discard, snaps)
			return
		}
		_ = summarizeCSV(io.Discard, data)
	})
}
