package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/trend"
)

// microFixture builds a v2 BENCH report JSON string with one sample set
// per (name, samples...) pair.
func microFixture(t *testing.T, env *bench.MicroEnv, benches map[string][]float64) string {
	t.Helper()
	rep := bench.MicroReport{Schema: bench.MicroSchema, GoMaxProcs: 1, Env: env}
	// Deterministic order for table assertions.
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	for _, n := range []string{"tm/load-8", "core/execute-htm", "core/granule-hit"} {
		for _, have := range names {
			if have == n {
				med := trend.Summarize(benches[n]).Median
				rep.Benchmarks = append(rep.Benchmarks, bench.MicroResult{
					Name: n, NsPerOp: med, SamplesNS: benches[n], OpsPerSec: 1e9 / med,
				})
			}
		}
	}
	var sb strings.Builder
	if err := bench.WriteMicroJSON(&sb, rep); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCompareIdenticalExitsClean(t *testing.T) {
	fx := microFixture(t, nil, map[string][]float64{
		"tm/load-8":        {83, 84, 82, 83, 83},
		"core/execute-htm": {200, 201, 199, 200, 200},
	})
	path := writeTemp(t, "base.json", fx)
	var out, errOut strings.Builder
	if code := runCompare([]string{path, path}, 0, false, &out, &errOut); code != exitClean {
		t.Fatalf("identical inputs exit %d, want 0; stderr: %s\noutput:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "0 regressed") {
		t.Errorf("clean compare table:\n%s", out.String())
	}
}

// TestCompareSeededRegression is the acceptance fixture: a synthetic
// ~50% slowdown on tight samples must exit 1 and name the benchmark.
func TestCompareSeededRegression(t *testing.T) {
	oldPath := writeTemp(t, "old.json", microFixture(t, nil, map[string][]float64{
		"tm/load-8":        {83, 84, 82, 83, 83},
		"core/execute-htm": {200, 201, 199, 200, 200},
	}))
	newPath := writeTemp(t, "new.json", microFixture(t, nil, map[string][]float64{
		"tm/load-8":        {83, 84, 82, 83, 83},
		"core/execute-htm": {300, 301, 299, 300, 300},
	}))
	var out, errOut strings.Builder
	code := runCompare([]string{oldPath, newPath}, 0, false, &out, &errOut)
	if code != exitRegression {
		t.Fatalf("seeded regression exit %d, want 1\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "core/execute-htm") || !strings.Contains(got, "regressed") {
		t.Errorf("regression output does not name the benchmark:\n%s", got)
	}
	if !strings.Contains(got, "tm/load-8") {
		t.Errorf("clean benchmark missing from table:\n%s", got)
	}

	// -threshold wide enough silences the same delta.
	out.Reset()
	if code := runCompare([]string{oldPath, newPath}, 75, false, &out, &errOut); code != exitClean {
		t.Errorf("threshold 75%% still exits %d\n%s", code, out.String())
	}

	// -json emits a machine-readable Comparison with the same verdict.
	out.Reset()
	if code := runCompare([]string{oldPath, newPath}, 0, true, &out, &errOut); code != exitRegression {
		t.Fatalf("-json compare exit %d, want 1", code)
	}
	var cmp trend.Comparison
	if err := json.Unmarshal([]byte(out.String()), &cmp); err != nil {
		t.Fatalf("-json output not parseable: %v\n%s", err, out.String())
	}
	if cmp.Regressions != 1 {
		t.Errorf("json comparison regressions = %d, want 1", cmp.Regressions)
	}
}

// TestCompareV1Baseline: a v1 single-sample file compares against a v2
// repeated-sample file — the round-trip the acceptance criteria name.
// Single samples get the wide default bound, so a 5% wobble is clean
// while a 50% jump still fails.
func TestCompareV1Baseline(t *testing.T) {
	v1 := `{"schema": "alebench-microbench/v1", "go_max_procs": 1, "benchmarks": [
		{"name": "core/execute-htm", "ns_per_op": 200, "allocs_per_op": 0, "ops_per_sec": 5000000, "elision_pct": 100}
	]}`
	oldPath := writeTemp(t, "v1.json", v1)
	within := writeTemp(t, "v2a.json", microFixture(t, nil, map[string][]float64{
		"core/execute-htm": {210, 211, 209, 210, 210},
	}))
	var out, errOut strings.Builder
	if code := runCompare([]string{oldPath, within}, 0, false, &out, &errOut); code != exitClean {
		t.Errorf("5%% delta vs v1 baseline exit %d, want 0 (wide default bound)\n%s", code, out.String())
	}
	jump := writeTemp(t, "v2b.json", microFixture(t, nil, map[string][]float64{
		"core/execute-htm": {300, 301, 299, 300, 300},
	}))
	out.Reset()
	if code := runCompare([]string{oldPath, jump}, 0, false, &out, &errOut); code != exitRegression {
		t.Errorf("50%% delta vs v1 baseline exit %d, want 1\n%s", code, out.String())
	}
}

func TestCompareMalformedExits2(t *testing.T) {
	good := writeTemp(t, "good.json", microFixture(t, nil, map[string][]float64{"tm/load-8": {80}}))
	cases := map[string][]string{
		"missing file":   {good, filepath.Join(t.TempDir(), "nope.json")},
		"not json":       {writeTemp(t, "junk.json", "not json"), good},
		"wrong schema":   {writeTemp(t, "other.json", `{"schema":"x/v9"}`), good},
		"one arg":        {good},
		"three args":     {good, good, good},
		"duplicate name": {writeTemp(t, "dup.json", `{"schema":"alebench-microbench/v2","benchmarks":[{"name":"a","ns_per_op":1},{"name":"a","ns_per_op":2}]}`), good},
	}
	for name, args := range cases {
		var out, errOut strings.Builder
		if code := runCompare(args, 0, false, &out, &errOut); code != exitMalformed {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, errOut.String())
		}
	}
	// The duplicate-name rejection is located.
	var out, errOut strings.Builder
	runCompare(cases["duplicate name"], 0, false, &out, &errOut)
	if !strings.Contains(errOut.String(), "benchmarks[1]") {
		t.Errorf("duplicate-name error not located: %s", errOut.String())
	}
}

// TestCompareEnvAnnotation: fingerprint mismatches annotate the table so
// a cross-host delta is never silently read as a code change.
func TestCompareEnvAnnotation(t *testing.T) {
	oldPath := writeTemp(t, "host-a.json", microFixture(t,
		&bench.MicroEnv{GoVersion: "go1.22.1", GOOS: "linux", GOARCH: "amd64", CPUModel: "Xeon", Time: "2026-01-01T00:00:00Z"},
		map[string][]float64{"tm/load-8": {80, 80, 80}}))
	newPath := writeTemp(t, "host-b.json", microFixture(t,
		&bench.MicroEnv{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "arm64", CPUModel: "Graviton", Time: "2026-02-01T00:00:00Z"},
		map[string][]float64{"tm/load-8": {80, 80, 80}}))
	var out, errOut strings.Builder
	runCompare([]string{oldPath, newPath}, 0, false, &out, &errOut)
	got := out.String()
	for _, want := range []string{"go_version", "goarch", "cpu_model", "environment"} {
		if !strings.Contains(got, want) {
			t.Errorf("cross-env compare missing %q annotation:\n%s", want, got)
		}
	}
}

func TestRunTrend(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// BENCH_4 is v1 (single samples); 5 and 12 are v2. The glob must
	// order them 4 < 5 < 12, which lexical sorting would not.
	write("BENCH_4.json", `{"schema": "alebench-microbench/v1", "benchmarks": [
		{"name": "core/execute-htm", "ns_per_op": 370, "elision_pct": 100}
	]}`)
	write("BENCH_5.json", microFixture(t, nil, map[string][]float64{"core/execute-htm": {200, 201, 199}}))
	write("BENCH_12.json", microFixture(t, nil, map[string][]float64{"core/execute-htm": {150, 151, 149}}))
	var out strings.Builder
	if err := runTrend(filepath.Join(dir, "BENCH_*.json"), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	i4 := strings.Index(got, "BENCH_4.json")
	i5 := strings.Index(got, "BENCH_5.json")
	i12 := strings.Index(got, "BENCH_12.json")
	if i4 < 0 || i5 < 0 || i12 < 0 || !(i4 < i5 && i5 < i12) {
		t.Fatalf("runs out of natural order (positions %d %d %d):\n%s", i4, i5, i12, got)
	}
	for _, want := range []string{"# Benchmark trend report (3 runs)", "## core/execute-htm", "improved"} {
		if !strings.Contains(got, want) {
			t.Errorf("trend report missing %q:\n%s", want, got)
		}
	}
}

func TestRunTrendErrors(t *testing.T) {
	var out strings.Builder
	if err := runTrend(filepath.Join(t.TempDir(), "BENCH_*.json"), &out); err == nil {
		t.Error("empty glob accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_1.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTrend(filepath.Join(dir, "BENCH_*.json"), io.Discard); err == nil {
		t.Error("unparseable series member accepted")
	}
}

// TestAnalyzeMicroV2: the -in path renders a v2 report with sample
// counts and "-" for entries without a defined elision rate, and a
// report with duplicate names fails with the located parse error
// instead of falling through to the snapshot parser.
func TestAnalyzeMicroV2(t *testing.T) {
	fx := microFixture(t,
		&bench.MicroEnv{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", Time: "2026-08-09T00:00:00Z"},
		map[string][]float64{"tm/load-8": {83, 84, 82}})
	var out strings.Builder
	if err := analyzeFile(writeTemp(t, "v2.json", fx), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"alebench-microbench/v2", "go1.24.0", "tm/load-8", "-"} {
		if !strings.Contains(got, want) {
			t.Errorf("v2 table missing %q:\n%s", want, got)
		}
	}

	dup := `{"schema":"alebench-microbench/v2","benchmarks":[{"name":"a","ns_per_op":1},{"name":"a","ns_per_op":2}]}`
	err := analyzeFile(writeTemp(t, "dup.json", dup), &out)
	if err == nil {
		t.Fatal("duplicate-name report accepted by -in")
	}
	if !strings.Contains(err.Error(), "benchmarks[1]") {
		t.Errorf("-in duplicate error not located: %v", err)
	}
}

func TestNaturalLess(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want bool
	}{
		{"BENCH_4.json", "BENCH_5.json", true},
		{"BENCH_9.json", "BENCH_10.json", true},
		{"BENCH_10.json", "BENCH_9.json", false},
		{"BENCH_10.json", "BENCH_10.json", false},
		{"a", "ab", true},
		{"BENCH_2x.json", "BENCH_2y.json", true},
	} {
		if got := naturalLess(tc.a, tc.b); got != tc.want {
			t.Errorf("naturalLess(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
