// Command alelint statically verifies ALE critical-section invariants
// across the repository: Begin/End conflicting-region pairing, the
// ReadStable/Validate discipline, irrevocable-action freedom in elidable
// bodies, and Execute structural rules. See docs/SWOPT_RULES.md for the
// rule catalog and internal/analysis for the analyzers.
//
// Usage:
//
//	go run ./cmd/alelint ./...
//
// Exit status is 0 when clean, 1 when diagnostics were reported, and 2 on
// load or analysis failure.
package main

import (
	"os"

	"repro/internal/analysis/alelint"
)

func main() {
	os.Exit(alelint.Main(os.Args[1:]))
}
