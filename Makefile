# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race lint fmt bench

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static verification of the ALE critical-section rules
# (docs/SWOPT_RULES.md) plus go vet. CI runs the same pair.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/alelint ./...

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
