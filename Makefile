# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race lint fmt patch-check bench bench-json bench-compare bench-gate bench-trend bench-scale stress cover profile serve loadtest top

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static verification of the ALE critical-section rules
# (docs/SWOPT_RULES.md) plus go vet. CI runs the same pair.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/alelint ./...

fmt:
	gofmt -w .

# The alepatch conversion gate (docs/ALEPATCH.md): the vendored subject
# package must stay fully convertible, the converted package must
# re-check clean (idempotence: a second alepatch finds nothing to do),
# and regenerating the conversion must reproduce the committed output
# byte for byte. patch-scratch is gitignored scratch output.
patch-check:
	$(GO) run ./cmd/alepatch -check ./examples/vendored/counter ./examples/vendored/counter_converted
	rm -rf patch-scratch
	$(GO) run ./cmd/alepatch -o patch-scratch ./examples/vendored/counter >/dev/null
	diff -u examples/vendored/counter_converted/counter.go patch-scratch/counter.go
	diff -u examples/vendored/counter_converted/zz_alepatch.go patch-scratch/zz_alepatch.go
	rm -rf patch-scratch

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Hot-path microbenchmark suite with the machine-readable report
# (alebench-microbench/v2: BENCH_COUNT repeated samples per benchmark
# plus the environment fingerprint; render it with `alereport -in
# BENCH_8.json`). This is how the committed baseline is refreshed — see
# EXPERIMENTS.md "Refreshing the BENCH_N baseline" for the procedure.
BENCH_BASELINE ?= BENCH_8.json
BENCH_COUNT ?= 5
bench-json:
	$(GO) run ./cmd/alebench -bench-json $(BENCH_BASELINE) -count $(BENCH_COUNT) micro

# Rerun the suite and diff it against the committed baseline,
# informationally: the verdict table prints but a regression does not
# fail the target. bench-new.json is gitignored scratch output.
bench-compare:
	$(GO) run ./cmd/alebench -bench-json bench-new.json -count $(BENCH_COUNT) micro
	-$(GO) run ./cmd/alereport -compare $(BENCH_BASELINE) bench-new.json

# The gating form: exit 1 if any benchmark regressed past its noise
# bound (or allocs/op rose at all), exit 2 on malformed input. Run this
# locally before claiming a perf win or merging a hot-path change.
bench-gate:
	$(GO) run ./cmd/alebench -bench-json bench-new.json -count $(BENCH_COUNT) micro
	$(GO) run ./cmd/alereport -compare $(BENCH_BASELINE) bench-new.json

# Cross-run trajectory of the whole committed BENCH series as markdown.
bench-trend:
	$(GO) run ./cmd/alereport -trend 'BENCH_*.json'

# Disjoint-commit scaling family at several GOMAXPROCS settings: the
# sharded commit clock against its single-clock (-shards 1) ablation,
# the tentpole measurement of EXPERIMENTS.md "Sharded commit clock".
# Reads are honest only where GOMAXPROCS ≤ physical cores; points above
# that measure time-slicing. bench-scale-p*.json is gitignored scratch.
bench-scale:
	for p in 1 2 4 8; do \
		GOMAXPROCS=$$p $(GO) run ./cmd/alebench \
			-bench-json bench-scale-p$$p.json -workers 1,2,4,8 scale; \
	done

# Profiling bundle for a representative sweep: CPU profile, heap profile,
# and a Perfetto-loadable Chrome trace with the timing layer on (plus the
# contention profile on stdout). Artifacts are gitignored.
profile:
	$(GO) run ./cmd/alebench -cpuprofile cpu.pprof -memprofile mem.pprof \
		-trace-chrome ale.trace.json striping
	@echo "profile: cpu.pprof mem.pprof ale.trace.json (go tool pprof / Perfetto)"

# Fault-injection stress: deterministic oracle runs plus a concurrent
# soak (docs/TESTING.md). Override SEED to replay a CI failure.
SEED ?= 1
stress:
	$(GO) run ./cmd/alestress -seed $(SEED) -ops 20000
	$(GO) run ./cmd/alestress -soak -seed $(SEED) -workers 4 -ops 10000

# The network server (docs/ALESERVE.md): `make serve` runs it in the
# foreground on the default ports; `make loadtest` drives a separate
# already-running server (default SERVE_ADDR) with a 10-second open-loop
# smoke load and renders the report. load-smoke.json is gitignored
# scratch output.
SERVE_ADDR ?= 127.0.0.1:7700
METRICS_ADDR ?= 127.0.0.1:7701
serve:
	$(GO) run ./cmd/aleserve -addr $(SERVE_ADDR) -metrics-addr $(METRICS_ADDR) \
		-flight flight.json

# Live terminal dashboard over the running server's /stream feed
# (docs/OBSERVABILITY.md). Ctrl-C to stop; `kill -QUIT` the server to
# dump its flight-recorder window, then `alereport -in flight.json`.
top:
	$(GO) run ./cmd/aletop -addr $(METRICS_ADDR)

loadtest:
	$(GO) run ./cmd/aleload -addr $(SERVE_ADDR) -conns 4 -rate 2000 \
		-duration 10s -warmup 1s -json load-smoke.json
	$(GO) run ./cmd/alereport -in load-smoke.json

# Combined engine+substrate coverage against the CI floor (89.7%).
cover:
	$(GO) test -count=1 -coverprofile=cover.out \
		-coverpkg=repro/internal/core,repro/internal/tm ./...
	$(GO) tool cover -func=cover.out | tail -1
