# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race lint fmt bench bench-json stress cover profile

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static verification of the ALE critical-section rules
# (docs/SWOPT_RULES.md) plus go vet. CI runs the same pair.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/alelint ./...

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Hot-path microbenchmark suite with the machine-readable report
# (alebench-microbench/v1; render it with `alereport -in BENCH_5.json`).
bench-json:
	$(GO) run ./cmd/alebench -bench-json BENCH_5.json micro

# Profiling bundle for a representative sweep: CPU profile, heap profile,
# and a Perfetto-loadable Chrome trace with the timing layer on (plus the
# contention profile on stdout). Artifacts are gitignored.
profile:
	$(GO) run ./cmd/alebench -cpuprofile cpu.pprof -memprofile mem.pprof \
		-trace-chrome ale.trace.json striping
	@echo "profile: cpu.pprof mem.pprof ale.trace.json (go tool pprof / Perfetto)"

# Fault-injection stress: deterministic oracle runs plus a concurrent
# soak (docs/TESTING.md). Override SEED to replay a CI failure.
SEED ?= 1
stress:
	$(GO) run ./cmd/alestress -seed $(SEED) -ops 20000
	$(GO) run ./cmd/alestress -soak -seed $(SEED) -workers 4 -ops 10000

# Combined engine+substrate coverage against the CI floor (89.7%).
cover:
	$(GO) test -count=1 -coverprofile=cover.out \
		-coverpkg=repro/internal/core,repro/internal/tm ./...
	$(GO) tool cover -func=cover.out | tail -1
